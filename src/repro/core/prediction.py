"""Predict phase: cross-core-type throughput and power (Eqs. 8–9).

A thread measured on one core type must be characterised on *every*
type without sampling it there (the paper rejects sampling for its
overhead).  Two models:

* **Throughput** (Eq. 8): per ordered type pair ``(src, dst)``, a
  linear regression over the counter feature vector of
  :mod:`repro.core.estimation`; ``ips = ipc · F_dst``.  The fitted Θ is
  the reproduction of the paper's Table 4.  The regression runs in
  **CPI space** — ``cpi_dst = Θ_{src→dst} · X'`` with the source-IPC
  feature inverted to source CPI — because stall contributions are
  additive in CPI, making the linear model a far better fit (the
  difference is roughly 3x in mean error on our hardware model); the
  prediction is inverted back to IPC and clipped to the IPC band seen
  in training.
* **Power** (Eq. 9): per core type, an affine map ``p = α₁·ipc + α₀``
  from predicted IPC to Watts, from offline profiling.

:class:`MatrixBuilder` assembles the full ``S`` (Eq. 2) and ``P``
(Eq. 3) matrices for the balance phase: measured entries where the
thread actually ran, predictions everywhere else.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.estimation import FEATURE_NAMES, N_FEATURES, feature_vector
from repro.core.sensing import ThreadObservation
from repro.hardware.features import CoreType

#: Index of the source-IPC feature, inverted to CPI in design space.
IPC_FEATURE_INDEX = FEATURE_NAMES.index("ipc_src")


def design_vector(features: np.ndarray) -> np.ndarray:
    """Map a feature vector into the regressor's design space.

    Identical to the feature vector except the source-IPC entry is
    replaced by source CPI, matching the CPI-space regression.
    """
    x = np.asarray(features, dtype=float).copy()
    x[IPC_FEATURE_INDEX] = 1.0 / max(x[IPC_FEATURE_INDEX], 1e-6)
    return x


@dataclass(frozen=True)
class PowerLine:
    """Eq. 9's per-core-type affine IPC→power map."""

    alpha1: float
    alpha0: float

    def predict(self, ipc: float) -> float:
        """Predicted power (W), floored to stay physical."""
        return max(self.alpha1 * ipc + self.alpha0, 1e-6)


@dataclass(frozen=True)
class PredictorModel:
    """The trained cross-core predictor (Θ of Table 4 + power lines).

    ``theta`` maps ordered core-type name pairs (src → dst) to
    coefficient vectors over the design space of :func:`design_vector`
    (Table 4 feature order, source IPC inverted to CPI, target in CPI).
    ``ipc_range`` clips predictions to the IPC band seen in training
    for each target type — extrapolation outside it is meaningless.
    """

    type_names: tuple[str, ...]
    theta: dict[tuple[str, str], np.ndarray]
    power_lines: dict[str, PowerLine]
    ipc_range: dict[str, tuple[float, float]]
    #: Training diagnostics: mean absolute relative error per pair.
    fit_error: dict[tuple[str, str], float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for pair, coeffs in self.theta.items():
            if np.asarray(coeffs).shape != (N_FEATURES,):
                raise ValueError(
                    f"theta[{pair}] must have {N_FEATURES} coefficients"
                )

    def predict_ipc(self, src_type: str, dst_type: str, features: np.ndarray) -> float:
        """Eq. 8: predicted IPC of the thread on ``dst_type``."""
        if src_type == dst_type:
            # Same type: the measurement itself (features carry it).
            return float(features[IPC_FEATURE_INDEX])
        try:
            coeffs = self.theta[(src_type, dst_type)]
        except KeyError:
            raise KeyError(
                f"predictor has no coefficients for {src_type} -> {dst_type}; "
                f"trained types: {self.type_names}"
            ) from None
        cpi = float(np.dot(coeffs, design_vector(features)))
        raw = 1.0 / max(cpi, 1e-3)
        lo, hi = self.ipc_range[dst_type]
        return min(max(raw, lo), hi)

    def predict_power(self, dst_type: str, ipc: float) -> float:
        """Eq. 9: predicted power (W) of the thread on ``dst_type``."""
        try:
            line = self.power_lines[dst_type]
        except KeyError:
            raise KeyError(
                f"predictor has no power line for {dst_type!r}; "
                f"trained types: {self.type_names}"
            ) from None
        return line.predict(ipc)

    # ------------------------------------------------------------------
    # Serialisation (a kernel would carry these as firmware blobs).
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "type_names": list(self.type_names),
            "theta": {
                f"{src}->{dst}": list(map(float, coeffs))
                for (src, dst), coeffs in self.theta.items()
            },
            "power_lines": {
                name: [line.alpha1, line.alpha0]
                for name, line in self.power_lines.items()
            },
            "ipc_range": {name: list(r) for name, r in self.ipc_range.items()},
            "fit_error": {
                f"{src}->{dst}": err for (src, dst), err in self.fit_error.items()
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "PredictorModel":
        def split(key: str) -> tuple[str, str]:
            src, dst = key.split("->")
            return src, dst

        return cls(
            type_names=tuple(data["type_names"]),
            theta={
                split(key): np.asarray(coeffs, dtype=float)
                for key, coeffs in data["theta"].items()
            },
            power_lines={
                name: PowerLine(alpha1=a1, alpha0=a0)
                for name, (a1, a0) in data["power_lines"].items()
            },
            ipc_range={
                name: (float(lo), float(hi))
                for name, (lo, hi) in data["ipc_range"].items()
            },
            fit_error={
                split(key): float(err)
                for key, err in data.get("fit_error", {}).items()
            },
        )


@dataclass(frozen=True)
class CharacterisationMatrices:
    """The S (Eq. 2) and P (Eq. 3) matrices plus companion vectors.

    ``ips``/``power`` are (m threads × n cores); row order follows
    ``tids``.  ``measured_mask[i, j]`` is True where the entry is a
    direct measurement rather than a prediction.

    ``utilization`` is also (m × n): the time fraction each thread
    would demand of each core.  A thread observed running below the
    CPU-bound threshold is rate-limited — it currently delivers
    ``u_meas · ips_measured`` instructions per wall second, and would
    demand ``min(rate / ips_ij, 1)`` of core ``j`` to sustain that
    rate; a CPU-bound thread demands every core fully.
    """

    tids: tuple[int, ...]
    ips: np.ndarray
    power: np.ndarray
    utilization: np.ndarray
    measured_mask: np.ndarray


#: Observed utilisation above which a thread is treated as CPU-bound
#: (it would saturate any core, so its demand does not shrink on a
#: faster one).
CPU_BOUND_UTILIZATION = 0.93


class MatrixBuilder:
    """Builds the characterisation matrices for the balance phase."""

    def __init__(self, model: PredictorModel) -> None:
        self.model = model

    def build(
        self,
        observations: list[ThreadObservation],
        cores: list[CoreType],
    ) -> CharacterisationMatrices:
        """Assemble S and P for ``observations`` across ``cores``.

        Every observation must carry a measurement (filter with
        ``EpochObservation.measured_threads`` first).
        """
        m, n = len(observations), len(cores)
        if m == 0:
            raise ValueError("need at least one measured thread")
        ips = np.zeros((m, n))
        power = np.zeros((m, n))
        measured = np.zeros((m, n), dtype=bool)
        util = np.zeros((m, n))
        for i, obs in enumerate(observations):
            if not obs.has_measurement:
                raise ValueError(
                    f"thread {obs.tid} ({obs.name}) has no measurement"
                )
            features = feature_vector(obs)
            src = obs.core_type.name
            # Predict once per distinct target type, then broadcast to
            # the cores of that type (same type => same prediction).
            ipc_by_type: dict[str, float] = {}
            for j, core_type in enumerate(cores):
                dst = core_type.name
                if dst not in ipc_by_type:
                    if dst == src:
                        ipc_by_type[dst] = obs.ipc_measured
                    else:
                        ipc_by_type[dst] = self.model.predict_ipc(src, dst, features)
                ipc = ipc_by_type[dst]
                ips[i, j] = ipc * core_type.freq_hz
                if dst == src:
                    power[i, j] = max(obs.power_measured, 1e-6)
                    measured[i, j] = True
                else:
                    power[i, j] = self.model.predict_power(dst, ipc)
            # Demand translation across cores (see class docstring).
            if obs.utilization >= CPU_BOUND_UTILIZATION:
                util[i, :] = 1.0
            else:
                delivered_rate = obs.utilization * ips[i, obs.core_id]
                with np.errstate(divide="ignore"):
                    util[i, :] = np.minimum(
                        delivered_rate / np.maximum(ips[i, :], 1e-9), 1.0
                    )
        return CharacterisationMatrices(
            tids=tuple(obs.tid for obs in observations),
            ips=ips,
            power=power,
            utilization=util,
            measured_mask=measured,
        )
