"""Tests for the slot-array allocation representation."""

import pytest
from hypothesis import given, strategies as st

from repro.core.allocation import EMPTY, Allocation


class TestConstruction:
    def test_round_robin(self):
        alloc = Allocation.round_robin(6, 4)
        assert alloc.mapping() == [0, 1, 2, 3, 0, 1]

    def test_from_mapping(self):
        alloc = Allocation.from_mapping([2, 2, 0], n_cores=3)
        assert alloc.core_of(0) == 2
        assert alloc.threads_on(2) == [0, 1]
        assert alloc.threads_on(1) == []

    def test_headroom_allows_all_on_one_core(self):
        alloc = Allocation.from_mapping([0] * 8, n_cores=4)
        assert alloc.threads_on(0) == list(range(8))

    def test_insufficient_slots_rejected(self):
        with pytest.raises(ValueError):
            Allocation(n_threads=5, n_cores=2, slots_per_core=2)

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError):
            Allocation(n_threads=-1, n_cores=2)
        with pytest.raises(ValueError):
            Allocation(n_threads=1, n_cores=0)


class TestPlacement:
    def test_double_place_rejected(self):
        alloc = Allocation(2, 2)
        alloc.place(0, 1)
        with pytest.raises(ValueError):
            alloc.place(0, 0)

    def test_core_of_unplaced_rejected(self):
        alloc = Allocation(2, 2)
        with pytest.raises(ValueError):
            alloc.core_of(0)

    def test_is_complete(self):
        alloc = Allocation(2, 2)
        assert not alloc.is_complete()
        alloc.place(0, 0)
        alloc.place(1, 1)
        assert alloc.is_complete()

    def test_full_core_rejects_placement(self):
        alloc = Allocation(3, 3, slots_per_core=1)
        alloc.place(0, 0)
        with pytest.raises(ValueError):
            alloc.place(1, 0)


class TestSwap:
    def test_swap_moves_thread_to_other_core(self):
        alloc = Allocation.round_robin(2, 2)
        # thread 0 in slot 0 (core 0); find an empty slot on core 1
        empty_slot = next(
            s for s in range(alloc.slots_per_core, 2 * alloc.slots_per_core)
            if alloc.slots[s] == EMPTY
        )
        alloc.swap(0, empty_slot)
        assert alloc.core_of(0) == 1

    def test_swap_exchanges_two_threads(self):
        alloc = Allocation.round_robin(2, 2)
        slot0 = alloc._thread_slot[0]
        slot1 = alloc._thread_slot[1]
        alloc.swap(slot0, slot1)
        assert alloc.core_of(0) == 1
        assert alloc.core_of(1) == 0

    def test_swap_empty_empty_is_noop(self):
        alloc = Allocation.round_robin(1, 3)
        empties = [i for i, t in enumerate(alloc.slots) if t == EMPTY]
        alloc.swap(empties[0], empties[1])
        assert alloc.core_of(0) == 0

    def test_swap_is_involutive(self):
        alloc = Allocation.round_robin(5, 3)
        before = alloc.mapping()
        alloc.swap(2, 11)
        alloc.swap(2, 11)
        assert alloc.mapping() == before

    def test_swap_returns_affected_cores(self):
        alloc = Allocation.round_robin(4, 2)
        cores = alloc.swap(0, alloc.slots_per_core)
        assert cores == (0, 1)

    def test_out_of_range_slot_rejected(self):
        alloc = Allocation.round_robin(2, 2)
        with pytest.raises(IndexError):
            alloc.swap(0, len(alloc) + 5)

    @given(
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=1, max_value=5),
        st.lists(st.tuples(st.integers(0, 1000), st.integers(0, 1000)), max_size=50),
    )
    def test_random_swaps_preserve_completeness(self, m, n, swaps):
        """Property: any swap sequence keeps every thread placed once."""
        alloc = Allocation.round_robin(m, n)
        total = len(alloc)
        for a, b in swaps:
            alloc.swap(a % total, b % total)
        assert alloc.is_complete()
        seen = [t for t in alloc.slots if t != EMPTY]
        assert sorted(seen) == list(range(m))


class TestCopyAndDiff:
    def test_copy_is_independent(self):
        alloc = Allocation.round_robin(4, 2)
        clone = alloc.copy()
        clone.swap(0, alloc.slots_per_core + 1)
        assert alloc.mapping() != clone.mapping() or alloc.mapping() == clone.mapping()
        assert alloc.core_of(0) == 0

    def test_diff_lists_changed_threads(self):
        a = Allocation.from_mapping([0, 1, 2], n_cores=3)
        b = Allocation.from_mapping([0, 2, 2], n_cores=3)
        assert a.diff(b) == {1: 2}

    def test_diff_empty_for_identical(self):
        a = Allocation.round_robin(5, 3)
        assert a.diff(a.copy()) == {}

    def test_diff_shape_mismatch_rejected(self):
        a = Allocation.round_robin(2, 2)
        b = Allocation.round_robin(3, 2)
        with pytest.raises(ValueError):
            a.diff(b)
