"""Per-cluster OPP ladders and applied-type bookkeeping.

A *cluster* shares one V/f knob (per
:class:`~repro.hardware.platform.Platform` cluster labels), but the
cores inside it may be heterogeneous: a cluster level ``l`` maps each
core to *its own nominal type's* OPP-``l`` variant.  The top rung of
every per-core ladder is the **exact nominal** :class:`CoreType`
object, not a reconstructed ``"Name@fMHz"`` variant — so a governor
that never leaves the top level leaves every core type byte-identical
to a governor-free run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware import dvfs
from repro.hardware.features import CoreType
from repro.hardware.platform import Platform


@dataclass(frozen=True)
class ClusterLadder:
    """One cluster's shared OPP ladder.

    ``types[level][i]`` / ``opps[level][i]`` is the applied core type /
    operating point of core ``core_ids[i]`` at that level.
    """

    cluster: str
    core_ids: tuple[int, ...]
    nominal_types: tuple[CoreType, ...]
    types: tuple[tuple[CoreType, ...], ...]
    opps: tuple[tuple[dvfs.OperatingPoint, ...], ...]

    @property
    def n_levels(self) -> int:
        return len(self.types)

    @property
    def top(self) -> int:
        """The nominal (highest-frequency) level index."""
        return self.n_levels - 1

    def freq_mhz(self, level: int) -> float:
        """Representative cluster frequency: the first core's OPP."""
        return self.opps[level][0].freq_mhz

    def vdd(self, level: int) -> float:
        return self.opps[level][0].vdd

    def transition_cost(
        self, from_level: int, to_level: int
    ) -> tuple[float, float]:
        """(dead time s, energy J) of switching the whole cluster.

        Cores change in parallel, so latency is the slowest core's ramp
        while energy is the sum over cores.
        """
        if from_level == to_level:
            return 0.0, 0.0
        latency = 0.0
        energy = 0.0
        for i, nominal in enumerate(self.nominal_types):
            old = self.opps[from_level][i]
            new = self.opps[to_level][i]
            latency = max(latency, dvfs.transition_latency_s(old, new))
            energy += dvfs.transition_energy_j(nominal, old, new)
        return latency, energy


@dataclass(frozen=True)
class OppChange:
    """One adopted cluster OPP switch, ready for the simulator to apply.

    The simulator duck-types this (``repro.kernel`` never imports the
    governor): it walks ``core_ids``/``new_types`` and re-bases each
    core, then emits an ``opp_change`` event from the remaining fields.
    """

    cluster: str
    core_ids: tuple[int, ...]
    new_types: tuple[CoreType, ...]
    from_level: int
    to_level: int
    from_freq_mhz: float
    to_freq_mhz: float
    from_vdd: float
    to_vdd: float
    transition_latency_s: float
    transition_energy_j: float


def build_ladders(platform: Platform, n_points: int) -> tuple[ClusterLadder, ...]:
    """One :class:`ClusterLadder` per platform cluster (label-sorted).

    Built from the platform's *nominal* core types, which is what the
    balancer's ``view.platform`` carries throughout a run regardless of
    throttle faults or previously applied OPPs.
    """
    ladders = []
    for label in sorted(platform.clusters):
        cores = platform.clusters[label]
        core_ids = tuple(core.core_id for core in cores)
        nominal = tuple(core.core_type for core in cores)
        per_core_opps = [dvfs.opp_table(ct, n_points) for ct in nominal]
        per_core_types = []
        for ct, opps in zip(nominal, per_core_opps):
            variants = list(dvfs.opp_variants(ct, n_points))
            # Top rung: the exact nominal object, not a "@"-named clone.
            variants[-1] = ct
            per_core_types.append(tuple(variants))
        levels_types = tuple(
            tuple(per_core_types[i][lvl] for i in range(len(nominal)))
            for lvl in range(n_points)
        )
        levels_opps = tuple(
            tuple(per_core_opps[i][lvl] for i in range(len(nominal)))
            for lvl in range(n_points)
        )
        ladders.append(
            ClusterLadder(
                cluster=label,
                core_ids=core_ids,
                nominal_types=nominal,
                types=levels_types,
                opps=levels_opps,
            )
        )
    return tuple(ladders)


def applied_types(
    ladders: "tuple[ClusterLadder, ...]",
    levels: "tuple[int, ...]",
    n_cores: int,
) -> "list[CoreType]":
    """Per-core applied type list (core-id indexed) for a level vector."""
    out: list[CoreType | None] = [None] * n_cores
    for ladder, level in zip(ladders, levels):
        for i, core_id in enumerate(ladder.core_ids):
            out[core_id] = ladder.types[level][i]
    missing = [i for i, t in enumerate(out) if t is None]
    if missing:
        raise ValueError(f"cores {missing} belong to no cluster ladder")
    return out  # type: ignore[return-value]


def opp_change(
    ladder: ClusterLadder, from_level: int, to_level: int
) -> OppChange:
    """Materialise one cluster's adopted level switch."""
    latency, energy = ladder.transition_cost(from_level, to_level)
    return OppChange(
        cluster=ladder.cluster,
        core_ids=ladder.core_ids,
        new_types=ladder.types[to_level],
        from_level=from_level,
        to_level=to_level,
        from_freq_mhz=ladder.freq_mhz(from_level),
        to_freq_mhz=ladder.freq_mhz(to_level),
        from_vdd=ladder.vdd(from_level),
        to_vdd=ladder.vdd(to_level),
        transition_latency_s=latency,
        transition_energy_j=energy,
    )
