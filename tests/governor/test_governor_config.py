"""GovernorConfig validation and CLI spec parsing."""

import pytest

from repro.governor import GOVERNOR_STRATEGIES, GovernorConfig, parse_governor


class TestGovernorConfig:
    def test_defaults_valid(self):
        config = GovernorConfig(strategy="two_level")
        assert config.n_points == 4
        assert config.opp_min_improvement > 0

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="strategy"):
            GovernorConfig(strategy="turbo")

    def test_pinned_requires_level(self):
        with pytest.raises(ValueError, match="pinned_level"):
            GovernorConfig(strategy="pinned")

    def test_negative_pinned_level_rejected(self):
        with pytest.raises(ValueError, match="pinned_level"):
            GovernorConfig(strategy="pinned", pinned_level=-1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_points": 0},
            {"opp_min_improvement": -0.1},
            {"inner_iteration_fraction": 0.0},
            {"inner_iteration_fraction": 1.5},
            {"max_enumeration": 0},
            {"opp_move_period": 1},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GovernorConfig(strategy="two_level", **kwargs)


class TestParseGovernor:
    @pytest.mark.parametrize("name", ["fixed", "two_level", "coupled_anneal"])
    def test_bare_strategies(self, name):
        assert name in GOVERNOR_STRATEGIES
        assert parse_governor(name).strategy == name

    def test_pinned_with_level(self):
        config = parse_governor("pinned:2")
        assert config.strategy == "pinned"
        assert config.pinned_level == 2

    def test_pinned_without_level_rejected(self):
        with pytest.raises(ValueError, match="level"):
            parse_governor("pinned")

    def test_pinned_bad_level_rejected(self):
        with pytest.raises(ValueError, match="pinned level"):
            parse_governor("pinned:lowest")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown governor"):
            parse_governor("ondemand")

    def test_whitespace_tolerated(self):
        assert parse_governor("  two_level ").strategy == "two_level"
