"""Alternative allocation optimizers.

The paper chooses simulated annealing (Algorithm 1) for the balance
phase and motivates it with tunability and near-optimal quality.  This
module provides the comparison points that motivation implies:

* :func:`greedy_allocate` — one pass of best-single-move hill climbing
  from the incumbent (cheap, gets stuck in local optima);
* :func:`random_search` — same move set as the annealer but pure
  random restarts of moves, no acceptance schedule (the "is SA's
  schedule doing anything?" control);
* :func:`exhaustive_search` — the true optimum by enumeration, only
  feasible for small problems (used by Fig. 8(a)'s distance-to-optimal
  and the optimizer-comparison ablation);
* :func:`optimize` — a uniform entry point.

All optimizers share the annealer's contract: the initial allocation
is never mutated, and the result is a complete allocation no worse
than the start.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.allocation import EMPTY, Allocation
from repro.core.annealing import SAConfig, SAResult, anneal
from repro.core.fixed_point import Xorshift32
from repro.core.objective import EnergyEfficiencyObjective, IncrementalEvaluator


@dataclass(frozen=True)
class OptimizeResult:
    """Uniform result across optimizers."""

    best_allocation: Allocation
    best_value: float
    initial_value: float
    #: Number of candidate evaluations performed.
    evaluations: int
    method: str

    @property
    def improvement(self) -> float:
        if self.initial_value == 0:
            return 0.0
        return (self.best_value - self.initial_value) / abs(self.initial_value)


def greedy_allocate(
    objective: EnergyEfficiencyObjective,
    initial: Allocation,
    max_rounds: int = 50,
) -> OptimizeResult:
    """Steepest-ascent hill climbing over single-thread moves.

    Each round evaluates moving every thread to every other core and
    applies the single best move; stops at a local optimum or after
    ``max_rounds``.
    """
    if max_rounds < 1:
        raise ValueError(f"max_rounds must be >= 1, got {max_rounds}")
    working = initial.copy()
    evaluator = IncrementalEvaluator(objective, working)
    initial_value = evaluator.value
    evaluations = 0
    for _ in range(max_rounds):
        best_move: Optional[tuple[int, int]] = None
        best_gain = 1e-12
        current = evaluator.value
        for thread in range(objective.n_threads):
            src_slot = working._thread_slot[thread]
            src_core = working.slot_core(src_slot)
            for core in range(objective.n_cores):
                if core == src_core:
                    continue
                dst_slot = _free_slot(working, core)
                if dst_slot is None:
                    continue
                value = evaluator.apply_swap(src_slot, dst_slot)
                evaluations += 1
                gain = value - current
                # Revert; slots may have changed for the thread.
                evaluator.apply_swap(src_slot, dst_slot)
                if gain > best_gain:
                    best_gain = gain
                    best_move = (src_slot, dst_slot)
        if best_move is None:
            break
        evaluator.apply_swap(*best_move)
    return OptimizeResult(
        best_allocation=working,
        best_value=evaluator.value,
        initial_value=initial_value,
        evaluations=evaluations,
        method="greedy",
    )


def random_search(
    objective: EnergyEfficiencyObjective,
    initial: Allocation,
    iterations: int = 1000,
    seed: int = 0x5EED,
) -> OptimizeResult:
    """Random swap proposals, accepting only strict improvements."""
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    working = initial.copy()
    evaluator = IncrementalEvaluator(objective, working)
    initial_value = evaluator.value
    current = initial_value
    rng = Xorshift32(seed)
    total = len(working)
    for _ in range(iterations):
        a = rng.randi_range(0, total)
        b = rng.randi_range(0, total)
        value = evaluator.apply_swap(a, b)
        if value >= current:
            current = value
        else:
            evaluator.apply_swap(a, b)
    return OptimizeResult(
        best_allocation=working,
        best_value=current,
        initial_value=initial_value,
        evaluations=iterations,
        method="random",
    )


#: Enumeration guard: n_cores ** n_threads must stay below this.
EXHAUSTIVE_LIMIT = 2_000_000


def exhaustive_search(
    objective: EnergyEfficiencyObjective,
    initial: Optional[Allocation] = None,
) -> OptimizeResult:
    """The global optimum by full enumeration (small problems only)."""
    m, n = objective.n_threads, objective.n_cores
    if n ** m > EXHAUSTIVE_LIMIT:
        raise ValueError(
            f"{n}^{m} allocations exceed the exhaustive-search limit "
            f"({EXHAUSTIVE_LIMIT}); use the annealer"
        )
    initial_value = (
        objective.evaluate(initial) if initial is not None else float("-inf")
    )
    best_mapping: Optional[tuple[int, ...]] = None
    best_value = float("-inf")
    evaluations = 0
    for mapping in itertools.product(range(n), repeat=m):
        value = objective.evaluate_mapping(mapping)
        evaluations += 1
        if value > best_value:
            best_value = value
            best_mapping = mapping
    assert best_mapping is not None
    return OptimizeResult(
        best_allocation=Allocation.from_mapping(list(best_mapping), n),
        best_value=best_value,
        initial_value=initial_value if initial is not None else best_value,
        evaluations=evaluations,
        method="exhaustive",
    )


def _sa_as_optimize(
    objective: EnergyEfficiencyObjective,
    initial: Allocation,
    config: Optional[SAConfig] = None,
) -> OptimizeResult:
    result: SAResult = anneal(objective, initial, config or SAConfig())
    return OptimizeResult(
        best_allocation=result.best_allocation,
        best_value=result.best_value,
        initial_value=result.initial_value,
        evaluations=result.iterations,
        method="annealing",
    )


#: Registry of optimizers by name.
OPTIMIZERS: dict[str, Callable[..., OptimizeResult]] = {
    "annealing": _sa_as_optimize,
    "greedy": greedy_allocate,
    "random": random_search,
    "exhaustive": exhaustive_search,
}


def optimize(
    method: str,
    objective: EnergyEfficiencyObjective,
    initial: Allocation,
    **kwargs,
) -> OptimizeResult:
    """Run a named optimizer; see :data:`OPTIMIZERS`."""
    try:
        runner = OPTIMIZERS[method]
    except KeyError:
        raise KeyError(
            f"unknown optimizer {method!r}; known: {sorted(OPTIMIZERS)}"
        ) from None
    if method == "exhaustive":
        return runner(objective, initial, **kwargs)
    return runner(objective, initial, **kwargs)


def _free_slot(allocation: Allocation, core: int) -> Optional[int]:
    """First empty slot on ``core``, or None if the core is full."""
    start = core * allocation.slots_per_core
    for slot in range(start, start + allocation.slots_per_core):
        if allocation.slots[slot] == EMPTY:
            return slot
    return None
