"""Benchmark + regeneration of Fig. 8: SA quality/budget trade-off and
optimizer parameters.

Times the annealer at the Fig. 8(a) iteration budgets on known-optimal
synthetic problems; asserts the distance-to-optimal curve decreases.
"""

import pytest

from repro.core.allocation import Allocation
from repro.core.annealing import SAConfig, anneal
from repro.experiments import fig8


@pytest.mark.parametrize("iterations", [30, 300, 3000])
def bench_fig8_anneal_budget(benchmark, iterations):
    """SA wall time at a given iteration budget (6 threads, 4 cores)."""
    objective = fig8.synthetic_problem(6, 4, seed=1)
    initial = Allocation.round_robin(6, 4)
    config = SAConfig(max_iterations=iterations, seed=2)

    result = benchmark(lambda: anneal(objective, initial, config))
    benchmark.extra_info["best_value"] = result.best_value


def bench_fig8_full_figure(benchmark, save_artifact):
    def regenerate():
        return fig8.run_fig8a(n_problems=4), fig8.run_fig8b()

    fig8a, fig8b = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    save_artifact(fig8a)
    save_artifact(fig8b)
    gaps = [row[1] for row in fig8a.rows if isinstance(row[0], int)]
    benchmark.extra_info["gap_at_min_budget_pct"] = gaps[0]
    benchmark.extra_info["gap_at_max_budget_pct"] = gaps[-1]
    assert gaps[-1] < gaps[0]
    assert gaps[-1] < 5.0
