"""Fig. 5 — normalized energy efficiency vs ARM GTS on big.LITTLE.

The paper creates an octa-core big.LITTLE with Gem5 and compares
SmartBalance against the ARM Global Task Scheduling policy (and
implicitly the vanilla balancer): SmartBalance's direct per-thread
energy-efficiency optimisation beats GTS's utilisation-threshold
binary big/little selection by ~20 %.

We additionally report Linaro IKS (the coarser cluster switcher GTS
improved upon) for context.
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult, Finding
from repro.analysis.stats import mean
from repro.experiments.common import FULL, Scale, compare_balancers
from repro.hardware.platform import big_little_octa
from repro.kernel.balancers.gts import GtsBalancer
from repro.kernel.balancers.iks import IksBalancer
from repro.kernel.balancers.smart import SmartBalanceKernelAdapter
from repro.kernel.balancers.vanilla import VanillaBalancer
from repro.workload.parsec import benchmark
from repro.workload.synthetic import imb_threads

#: Paper headline: ~20 % over GTS.
PAPER_GAIN_OVER_GTS_PCT = 20.0

_BALANCERS = (VanillaBalancer, IksBalancer, GtsBalancer, SmartBalanceKernelAdapter)


def run(scale: Scale = FULL) -> ExperimentResult:
    """Fig. 5: normalised IPS/Watt per balancer on big.LITTLE."""
    platform = big_little_octa()
    rows = []
    gains_over_gts = []
    cases = [
        (name, lambda b=name, n=n: benchmark(b).threads(n))
        for name in scale.parsec_benchmarks
        for n in scale.thread_counts
    ]
    cases += [
        (f"imb-{c}", lambda c=c, n=n: imb_threads(c, n))
        for c in scale.imb_configs[:3]
        for n in scale.thread_counts[-1:]
    ]
    for case_name, factory in cases:
        results = compare_balancers(
            platform, factory, _BALANCERS, n_epochs=scale.n_epochs
        )
        gts = results["gts"].ips_per_watt
        if gts <= 0:
            continue
        normalised = {
            name: result.ips_per_watt / gts for name, result in results.items()
        }
        gains_over_gts.append(100.0 * (normalised["smartbalance"] - 1.0))
        rows.append(
            [
                case_name,
                round(normalised["vanilla"], 2),
                round(normalised["iks"], 2),
                1.0,
                round(normalised["smartbalance"], 2),
            ]
        )
    return ExperimentResult(
        experiment_id="fig5",
        title="Fig. 5: Normalised energy efficiency on octa-core big.LITTLE "
        "(GTS = 1.0)",
        headers=["benchmark", "vanilla", "IKS", "GTS", "SmartBalance"],
        rows=rows,
        findings=(
            Finding(
                name="average gain over GTS",
                measured=mean(gains_over_gts),
                paper=PAPER_GAIN_OVER_GTS_PCT,
                unit="%",
            ),
        ),
    )


def main() -> None:
    print(run().render())


if __name__ == "__main__":
    main()
