"""End-to-end fleet simulation: every scenario completes, the ledger is
consistent, and emitted traces validate against the event schema."""

import pytest

from repro.fleet import FLEET_SCENARIOS, FleetSpec, run_fleet
from repro.obs import ObsContext
from repro.obs import events as ev
from repro.obs.events import validate_events


def _spec(**overrides):
    overrides.setdefault("profile", "analytic")
    overrides.setdefault("n_requests", 12)
    return FleetSpec(**overrides)


def test_clean_run_completes_everything():
    result = run_fleet(_spec())
    assert result.accepted == 12
    assert result.completed == 12
    assert result.failed == 0
    assert result.completion_rate == 1.0
    assert result.makespan_s > 0
    assert result.throughput_rps > 0
    assert result.useful_instructions > 0
    assert result.total_energy_j > 0
    assert result.injections["total"] == 0


@pytest.mark.parametrize("scenario", FLEET_SCENARIOS)
def test_every_fault_scenario_still_completes_all_jobs(scenario):
    result = run_fleet(_spec(faults=scenario, n_requests=16,
                             arrival_rate_hz=8.0))
    assert result.accepted == 16
    assert result.completed == 16, f"{scenario}: jobs lost"
    assert result.failed == 0
    assert result.injections["total"] > 0, (
        f"{scenario}: no faults actually injected")


def test_kill30_rescues_jobs_and_ledger_is_consistent():
    obs = ObsContext()
    result = run_fleet(_spec(faults="kill30", n_requests=24,
                             arrival_rate_hz=12.0), obs=obs)
    assert result.completed == result.accepted
    assert result.stats["nodes_down"] >= 1
    events = obs.tracer.events
    down_events = [e for e in events if e["type"] == ev.NODE_DOWN]
    rescued = sum(e["jobs_rescued"] for e in down_events)
    reroutes = [e for e in events if e["type"] == ev.REROUTE
                and e["cause"] == "node_down"]
    assert rescued == len(reroutes), "every rescued job was rerouted"
    assert result.stats["reroutes"] >= len(reroutes)
    # Per-node ledger totals reconcile with the fleet totals.
    assert sum(n["jobs_completed"] for n in result.nodes) >= result.completed
    assert result.ledger, "job ledger present"
    assert all(entry["completed_by"] >= 0 for entry in result.ledger)


def test_traces_validate_for_clean_and_chaos_runs():
    for faults in (None, "chaos"):
        obs = ObsContext()
        run_fleet(_spec(faults=faults), obs=obs)
        events = obs.tracer.events
        assert events
        assert validate_events(events) == []
        kinds = {e["type"] for e in events}
        assert ev.FLEET_DISPATCH in kinds
        assert ev.FLEET_COMPLETE in kinds
        assert ev.NODE_UP in kinds


def test_chaos_exercises_the_defence_stack():
    obs = ObsContext()
    # Seed 5 is pinned because its chaos timeline puts jobs in flight on
    # the crashed node and trips the hedger — every defence engages.
    result = run_fleet(_spec(faults="chaos", n_requests=24,
                             arrival_rate_hz=12.0, seed=5), obs=obs)
    assert result.completed == result.accepted
    stats = result.stats
    assert stats["heartbeats_missed"] > 0
    assert stats["nodes_down"] >= 1
    assert stats["reroutes"] >= 1
    assert stats["hedges"] >= 1
    assert stats["stale_fallbacks"] >= 1
    assert stats["telemetry_rejected"] >= 1
    assert stats["degraded_dispatches"] >= 1
    mitigations = {e["kind"] for e in obs.tracer.by_type(ev.MITIGATION)}
    assert {"stale_fallback", "telemetry_rejected",
            "quorum_degraded"} <= mitigations


def test_wasted_energy_only_under_duplicates():
    clean = run_fleet(_spec())
    assert clean.duplicates == 0
    assert clean.wasted_energy_j == pytest.approx(0.0, abs=1e-9)
    # An aggressive hedger under partition produces duplicate completions.
    dup = run_fleet(_spec(faults="partition", n_requests=16,
                          arrival_rate_hz=8.0, hedge_factor=1.2))
    if dup.duplicates:
        assert dup.wasted_energy_j > 0.0


def test_round_robin_policy_completes_but_spends_more_energy():
    energy = run_fleet(_spec(n_requests=24, arrival_rate_hz=12.0))
    rr = run_fleet(_spec(n_requests=24, arrival_rate_hz=12.0,
                         policy="round_robin"))
    assert energy.completed == rr.completed == 24
    assert energy.ips_per_watt >= rr.ips_per_watt, (
        "energy-aware placement should not be worse than round-robin")


def test_latency_percentiles_are_ordered():
    result = run_fleet(_spec(n_requests=24, arrival_rate_hz=12.0))
    assert 0.0 <= result.dispatch_latency_p50_s <= result.dispatch_latency_p99_s
    assert (0.0 < result.completion_latency_p50_s
            <= result.completion_latency_p99_s)
