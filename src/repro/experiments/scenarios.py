"""Scenario experiment: balancer variants across the three families.

The paper's experiments run steady multiprogrammed mixes; the
:mod:`repro.scenarios` families stress the balancer along axes those
runs never exercise, and each family has a natural figure of merit:

* **barrier** — a barrier-synchronised group finishes when its
  *slowest* member does, so the metric is group makespan.  The
  ``tpeq`` variant (thread-progress equalisation, after TPEq) weights
  each member's predicted-IPS row by its progress deficit, steering
  big cores to laggards.
* **openloop** — open-loop request traffic is scored by latency
  percentiles and SLO-miss rate.  The ``slo`` variant weights request
  rows by deadline urgency.
* **smt** — with the big cluster co-running threads SMT-style, the
  interference-aware energy model should keep SmartBalance efficient
  where throughput-greedy heuristics (GTS racking everything onto the
  doubled-capacity big cores) burn power on contention.

Every cell shares platform, base workload, scenario string and epoch
count, and every (family, balancer) pair is averaged over the same
pinned seeds — the columns differ only in the balancer.  The headline
findings are the tpeq makespan cut and the slo SLO-miss cut against
stock SmartBalance, plus SmartBalance's J_E margin over GTS under SMT
sharing; ``benchmarks/bench_scenarios.py`` gates floors on all three.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.reporting import ExperimentResult, Finding
from repro.experiments.common import QUICK, Scale, run_cases
from repro.runner.spec import RunSpec

#: big.LITTLE so ARM GTS (two clusters) can join every comparison.
PLATFORM = "biglittle"

#: Base multiprogrammed workload under every scenario.
BASE_WORKLOAD = "MTMI"
N_THREADS = 4

#: Pinned seeds; every (family, balancer) cell averages the same set.
SEEDS_QUICK = (1, 2, 3)
SEEDS_FULL = (1, 2, 3, 4, 5)

#: family -> (scenario string, balancers compared).  The barrier
#: geometry is sized to complete within a quick-scale horizon so the
#: makespan is always defined.
CASES = {
    "barrier": (
        "barrier:groups=2,members=4,intervals=4,interval_minstr=25,imbalance=0.8",
        ("smartbalance", "tpeq", "gts", "vanilla"),
    ),
    "openloop": (
        "openloop",
        ("smartbalance", "slo", "gts", "vanilla"),
    ),
    "smt": (
        "smt:cores=big,corunners=4",
        ("smartbalance", "gts", "vanilla"),
    ),
}


def scenario_specs(scale: Scale) -> "list[RunSpec]":
    """One spec per (family, balancer, seed) cell."""
    seeds = SEEDS_QUICK if scale.name == "quick" else SEEDS_FULL
    return [
        RunSpec(
            workload=BASE_WORKLOAD,
            platform=PLATFORM,
            threads=N_THREADS,
            balancer=balancer,
            n_epochs=scale.n_epochs,
            seed=seed,
            scenario=scenario,
        )
        for scenario, balancers in CASES.values()
        for balancer in balancers
        for seed in seeds
    ]


def _mean(values: "list[float]") -> float:
    return sum(values) / len(values) if values else 0.0


def compare(
    scale: Scale = QUICK,
    jobs: Optional[int] = None,
    cache=None,
) -> dict:
    """Run the sweep and fold it into per-(family, balancer) means."""
    specs = scenario_specs(scale)
    results = run_cases(specs, jobs=jobs, cache=cache)
    seeds = SEEDS_QUICK if scale.name == "quick" else SEEDS_FULL
    by_cell: "dict[tuple[str, str], list]" = {}
    family_of = {text: family for family, (text, _) in CASES.items()}
    for spec, result in zip(specs, results):
        family = family_of[spec.scenario]
        by_cell.setdefault((family, spec.balancer), []).append(result)

    families: "dict[str, dict[str, dict]]" = {}
    for (family, balancer), runs in by_cell.items():
        cell = {
            "ips_per_watt": _mean([r.ips_per_watt for r in runs]),
            "ips": _mean([r.average_ips for r in runs]),
            "power_w": _mean([r.average_power_w for r in runs]),
            "migrations": _mean([float(r.migrations) for r in runs]),
        }
        stats = [r.scenario or {} for r in runs]
        if family == "barrier":
            # An unfinished group counts as the full horizon — a
            # balancer must not look *better* by never finishing.
            cell["makespan_s"] = _mean(
                [
                    s["makespan_s"] if s["makespan_s"] is not None
                    else r.duration_s
                    for s, r in zip(stats, runs)
                ]
            )
            cell["stall_s"] = _mean([s["stall_s"] for s in stats])
        elif family == "openloop":
            cell["slo_miss_rate"] = _mean([s["slo_miss_rate"] for s in stats])
            cell["latency_p99_s"] = _mean(
                [s.get("latency_p99_s", 0.0) for s in stats]
            )
        families.setdefault(family, {})[balancer] = cell

    barrier = families["barrier"]
    openloop = families["openloop"]
    smt = families["smt"]
    return {
        "n_epochs": scale.n_epochs,
        "seeds": list(seeds),
        "platform": PLATFORM,
        "threads": N_THREADS,
        "scenarios": {f: CASES[f][0] for f in CASES},
        "families": families,
        "tpeq_makespan_cut_pct": 100.0 * (
            1.0 - barrier["tpeq"]["makespan_s"]
            / barrier["smartbalance"]["makespan_s"]
        ),
        "tpeq_je_vs_stock_pct": 100.0 * (
            barrier["tpeq"]["ips_per_watt"]
            / barrier["smartbalance"]["ips_per_watt"] - 1.0
        ),
        "slo_miss_cut_pct": 100.0 * (
            1.0 - openloop["slo"]["slo_miss_rate"]
            / openloop["smartbalance"]["slo_miss_rate"]
        ),
        "slo_p99_cut_pct": 100.0 * (
            1.0 - openloop["slo"]["latency_p99_s"]
            / openloop["smartbalance"]["latency_p99_s"]
        ),
        "smt_je_vs_gts_pct": 100.0 * (
            smt["smartbalance"]["ips_per_watt"]
            / smt["gts"]["ips_per_watt"] - 1.0
        ),
    }


def run(
    scale: Scale = QUICK,
    jobs: Optional[int] = None,
    cache=None,
) -> ExperimentResult:
    """Scenario sweep: per-family figures of merit per balancer."""
    data = compare(scale, jobs=jobs, cache=cache)
    rows = []
    for family in CASES:
        cells = data["families"][family]
        for balancer in CASES[family][1]:
            cell = cells[balancer]
            if family == "barrier":
                merit = f"makespan {cell['makespan_s'] * 1e3:.0f} ms"
            elif family == "openloop":
                merit = (
                    f"miss {cell['slo_miss_rate']:.1%} / "
                    f"p99 {cell['latency_p99_s'] * 1e3:.1f} ms"
                )
            else:
                merit = f"IPS {cell['ips']:.3e}"
            rows.append(
                [
                    family,
                    balancer,
                    merit,
                    f"{cell['ips_per_watt']:.4e}",
                    round(cell["power_w"], 3),
                    round(cell["migrations"], 1),
                ]
            )
    return ExperimentResult(
        experiment_id="scenarios",
        title=(
            "Scenario families: progress- and latency-aware variants "
            f"({data['platform']}, {BASE_WORKLOAD} x{data['threads']} base, "
            f"{data['n_epochs']} epochs, seeds {data['seeds']})"
        ),
        headers=[
            "family",
            "balancer",
            "figure of merit",
            "IPS/W",
            "power W",
            "migrations",
        ],
        rows=rows,
        findings=(
            Finding(
                name="tpeq barrier-makespan cut vs stock SmartBalance",
                measured=data["tpeq_makespan_cut_pct"],
                unit="%",
            ),
            Finding(
                name="tpeq J_E vs stock SmartBalance (barrier)",
                measured=data["tpeq_je_vs_stock_pct"],
                unit="%",
            ),
            Finding(
                name="slo SLO-miss-rate cut vs stock SmartBalance",
                measured=data["slo_miss_cut_pct"],
                unit="%",
            ),
            Finding(
                name="slo p99-latency cut vs stock SmartBalance",
                measured=data["slo_p99_cut_pct"],
                unit="%",
            ),
            Finding(
                name="SmartBalance J_E vs ARM GTS under SMT co-run",
                measured=data["smt_je_vs_gts_pct"],
                unit="%",
            ),
        ),
        notes=(
            "Every cell shares platform, base workload, scenario and "
            "epochs, averaged over the same pinned seeds; only the "
            "balancer differs.  Unfinished barrier groups are charged "
            "the full horizon.  GTS reaches barrier makespans close to "
            "tpeq by racking threads onto the big cluster, but pays "
            "15-20% J_E for it; tpeq gets there from inside the "
            "energy-efficiency objective.  Under SMT, GTS greedily "
            "racks threads onto the doubled-capacity big cluster — "
            "peak throughput at well under half the J_E — while "
            "SmartBalance's efficiency objective keeps the spread "
            "placement."
        ),
    )


def main() -> None:
    from repro.obs import user_output

    user_output(run().render())


if __name__ == "__main__":
    main()
