"""SmartBalance reproduction: a sensing-driven load balancer for
energy efficiency of heterogeneous MPSoCs (Sarma et al., DAC 2015).

Quick start::

    from repro import quad_hmp, System, SmartBalanceKernelAdapter, imb_threads

    platform = quad_hmp()
    threads = imb_threads("HTMI", n_threads=8)
    system = System(platform, threads, SmartBalanceKernelAdapter())
    result = system.run(n_epochs=50)
    print(result.ips_per_watt)

Packages:

* :mod:`repro.hardware` — simulated MPSoC (Gem5/McPAT substitute)
* :mod:`repro.workload` — PARSEC-like models + synthetic benchmarks
* :mod:`repro.kernel` — CFS scheduling substrate, baseline balancers
* :mod:`repro.core` — SmartBalance itself
* :mod:`repro.analysis` — statistics and reporting
* :mod:`repro.experiments` — one module per paper table/figure
"""

from repro.core import (
    Allocation,
    EnergyEfficiencyObjective,
    PredictorModel,
    SAConfig,
    SmartBalance,
    SmartBalanceConfig,
    anneal,
    default_predictor,
    train_predictor,
)
from repro.hardware import (
    ARM_BIG,
    ARM_LITTLE,
    BIG,
    HUGE,
    MEDIUM,
    SMALL,
    CoreType,
    Platform,
    big_little_octa,
    build_platform,
    quad_hmp,
    scaled_hmp,
)
from repro.kernel import RunResult, SimulationConfig, System
from repro.kernel.balancers import (
    GtsBalancer,
    IksBalancer,
    LoadBalancer,
    NullBalancer,
    SmartBalanceKernelAdapter,
    VanillaBalancer,
)
from repro.workload import (
    BENCHMARKS,
    IMB_CONFIGS,
    MIXES,
    ThreadBehavior,
    WorkloadPhase,
    benchmark,
    imb_threads,
    mix_threads,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # hardware
    "CoreType",
    "Platform",
    "HUGE",
    "BIG",
    "MEDIUM",
    "SMALL",
    "ARM_BIG",
    "ARM_LITTLE",
    "quad_hmp",
    "big_little_octa",
    "build_platform",
    "scaled_hmp",
    # workload
    "WorkloadPhase",
    "ThreadBehavior",
    "BENCHMARKS",
    "MIXES",
    "IMB_CONFIGS",
    "benchmark",
    "mix_threads",
    "imb_threads",
    # kernel
    "System",
    "SimulationConfig",
    "RunResult",
    "LoadBalancer",
    "NullBalancer",
    "VanillaBalancer",
    "GtsBalancer",
    "IksBalancer",
    "SmartBalanceKernelAdapter",
    # core
    "SmartBalance",
    "SmartBalanceConfig",
    "SAConfig",
    "Allocation",
    "EnergyEfficiencyObjective",
    "anneal",
    "PredictorModel",
    "train_predictor",
    "default_predictor",
]
