"""Tests for the DVFS operating-point extension."""

import pytest

from repro.hardware import microarch, power
from repro.hardware.dvfs import (
    MIN_OPERATING_VDD,
    OperatingPoint,
    dvfs_platform,
    energy_per_instruction,
    opp_table,
    opp_variants,
    voltage_for_frequency,
)
from repro.hardware.features import BIG, MEDIUM


class TestVoltageCurve:
    def test_nominal_point(self):
        assert voltage_for_frequency(BIG, BIG.freq_mhz) == BIG.vdd

    def test_over_nominal_clamped(self):
        assert voltage_for_frequency(BIG, 2 * BIG.freq_mhz) == BIG.vdd

    def test_floor_voltage(self):
        assert voltage_for_frequency(BIG, 1.0) == MIN_OPERATING_VDD

    def test_monotone(self):
        freqs = [200, 500, 900, 1200, 1500]
        volts = [voltage_for_frequency(BIG, f) for f in freqs]
        assert volts == sorted(volts)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ValueError):
            voltage_for_frequency(BIG, 0.0)


class TestOppTable:
    def test_size_and_ordering(self):
        table = opp_table(BIG, 4)
        assert len(table) == 4
        freqs = [o.freq_mhz for o in table]
        assert freqs == sorted(freqs)
        assert freqs[-1] == BIG.freq_mhz

    def test_single_point_is_nominal(self):
        (only,) = opp_table(BIG, 1)
        assert only.freq_mhz == BIG.freq_mhz
        assert only.vdd == BIG.vdd

    def test_invalid_count_rejected(self):
        with pytest.raises(ValueError):
            opp_table(BIG, 0)

    def test_operating_point_validation(self):
        with pytest.raises(ValueError):
            OperatingPoint(freq_mhz=-1.0, vdd=1.0)
        with pytest.raises(ValueError):
            OperatingPoint(freq_mhz=1000.0, vdd=0.0)


class TestOppVariants:
    def test_variants_are_distinct_types(self):
        variants = opp_variants(MEDIUM, 3)
        names = {v.name for v in variants}
        assert len(names) == 3
        assert all(v.issue_width == MEDIUM.issue_width for v in variants)

    def test_lower_opp_means_lower_power(self):
        low, *_, high = opp_variants(BIG, 4)
        assert power.peak_power(low) < power.peak_power(high)

    def test_lower_opp_means_lower_throughput(self):
        low, *_, high = opp_variants(BIG, 4)
        assert microarch.peak_ips(low) < microarch.peak_ips(high)


class TestDvfsPlatform:
    def test_one_opp_per_core(self):
        platform = dvfs_platform(MEDIUM, n_cores=4)
        assert len(platform) == 4
        assert len(platform.core_types) == 4

    def test_more_cores_than_opps_cycles(self):
        platform = dvfs_platform(MEDIUM, n_cores=6, n_points=3)
        assert len(platform) == 6
        assert len(platform.core_types) == 3

    def test_invalid_core_count_rejected(self):
        with pytest.raises(ValueError):
            dvfs_platform(MEDIUM, n_cores=0)


class TestEnergyPerInstruction:
    def test_rows_match_opps(self):
        opps = opp_table(BIG, 3)
        rows = energy_per_instruction(BIG, opps)
        assert len(rows) == 3
        for opp, ips, epi in rows:
            assert ips > 0 and epi > 0

    def test_low_opp_more_efficient_per_instruction(self):
        """The DVFS premise: the lowest OPP costs fewer Joules per
        instruction than the highest (leakage does not dominate in this
        calibration)."""
        opps = opp_table(BIG, 4)
        rows = energy_per_instruction(BIG, opps)
        assert rows[0][2] < rows[-1][2]
