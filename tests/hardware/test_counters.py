"""Tests for the hardware performance counters."""

import pytest

from repro.hardware import microarch
from repro.hardware.counters import CounterBlock
from repro.hardware.features import BIG, MEDIUM
from repro.workload.characteristics import COMPUTE_PHASE, MEMORY_PHASE


def charged_block(phase=COMPUTE_PHASE, core=BIG, duration=0.01) -> CounterBlock:
    block = CounterBlock()
    perf = microarch.estimate(phase, core)
    block.charge_execution(perf, core, duration, phase.mem_share, phase.branch_share)
    return block


class TestChargeExecution:
    def test_returns_committed_instructions(self):
        block = CounterBlock()
        perf = microarch.estimate(COMPUTE_PHASE, BIG)
        retired = block.charge_execution(
            perf, BIG, 0.01, COMPUTE_PHASE.mem_share, COMPUTE_PHASE.branch_share
        )
        assert retired == pytest.approx(perf.ipc * BIG.freq_hz * 0.01)
        assert block.instructions == pytest.approx(retired)

    def test_cycles_conserved(self):
        """busy + idle == wall cycles of the slice."""
        block = charged_block(duration=0.02)
        assert block.cy_busy + block.cy_idle == pytest.approx(0.02 * BIG.freq_hz)

    def test_instruction_mix_shares(self):
        block = charged_block()
        assert block.mem_instructions / block.instructions == pytest.approx(
            COMPUTE_PHASE.mem_share
        )
        assert block.branch_instructions / block.instructions == pytest.approx(
            COMPUTE_PHASE.branch_share
        )

    def test_event_counts_match_rates(self):
        block = CounterBlock()
        perf = microarch.estimate(MEMORY_PHASE, MEDIUM)
        block.charge_execution(
            perf, MEDIUM, 0.01, MEMORY_PHASE.mem_share, MEMORY_PHASE.branch_share
        )
        assert block.l1d_misses == pytest.approx(
            block.mem_instructions * perf.dcache_miss_rate
        )
        assert block.branch_mispredicts == pytest.approx(
            block.branch_instructions * perf.branch_miss_rate
        )

    def test_accumulates_across_slices(self):
        block = CounterBlock()
        perf = microarch.estimate(COMPUTE_PHASE, BIG)
        for _ in range(3):
            block.charge_execution(perf, BIG, 0.005, 0.3, 0.1)
        assert block.busy_time_s == pytest.approx(0.015)

    def test_negative_duration_rejected(self):
        block = CounterBlock()
        perf = microarch.estimate(COMPUTE_PHASE, BIG)
        with pytest.raises(ValueError):
            block.charge_execution(perf, BIG, -1.0, 0.3, 0.1)


class TestSleepAndReset:
    def test_sleep_charges_sleep_cycles_only(self):
        block = CounterBlock()
        block.charge_sleep(BIG, 0.01)
        assert block.cy_sleep == pytest.approx(0.01 * BIG.freq_hz)
        assert block.instructions == 0.0

    def test_reset_zeroes_everything(self):
        block = charged_block()
        block.reset()
        assert all(
            getattr(block, name) == 0.0 for name in block.__dataclass_fields__
        )

    def test_merge_adds(self):
        a = charged_block(duration=0.01)
        b = charged_block(duration=0.02)
        total = a.instructions + b.instructions
        a.merge(b)
        assert a.instructions == pytest.approx(total)

    def test_snapshot_is_independent(self):
        block = charged_block()
        snap = block.snapshot()
        block.reset()
        assert snap.instructions > 0.0


class TestDerivedRates:
    def test_roundtrip_rates(self):
        """derive_rates must invert charge_execution's event rates."""
        phase, core = MEMORY_PHASE, MEDIUM
        block = CounterBlock()
        perf = microarch.estimate(phase, core)
        block.charge_execution(perf, core, 0.05, phase.mem_share, phase.branch_share)
        rates = block.derive_rates()
        assert rates.ipc == pytest.approx(perf.ipc, rel=1e-9)
        assert rates.mem_share == pytest.approx(phase.mem_share)
        assert rates.branch_share == pytest.approx(phase.branch_share)
        assert rates.l1d_miss_rate == pytest.approx(perf.dcache_miss_rate)
        assert rates.l1i_miss_rate == pytest.approx(perf.icache_miss_rate)
        assert rates.branch_miss_rate == pytest.approx(perf.branch_miss_rate)
        assert rates.dtlb_miss_rate == pytest.approx(perf.dtlb_miss_rate)
        assert rates.itlb_miss_rate == pytest.approx(perf.itlb_miss_rate)

    def test_stall_fraction_matches_model(self):
        phase, core = MEMORY_PHASE, MEDIUM
        block = CounterBlock()
        perf = microarch.estimate(phase, core)
        block.charge_execution(perf, core, 0.05, phase.mem_share, phase.branch_share)
        rates = block.derive_rates()
        assert rates.stall_fraction == pytest.approx(perf.stall_cpi / perf.cpi)

    def test_ips_is_instructions_per_busy_second(self):
        block = charged_block(duration=0.02)
        rates = block.derive_rates()
        assert rates.ips == pytest.approx(block.instructions / 0.02)

    def test_empty_block_rates_are_zero(self):
        rates = CounterBlock().derive_rates()
        assert rates.ipc == 0.0
        assert rates.ips == 0.0
