"""The fleet simulation: virtual-time event loop over agents + dispatcher.

One :class:`FleetSim` run is a discrete-event simulation driven by a
single heap of ``(t_s, seq, kind, payload)`` entries — request
arrivals, heartbeat ticks, job completions, retry timers and the
seeded cluster faults.  The ``seq`` counter makes the ordering a
deterministic total order, every timestamp is virtual, and all
randomness flows from the spec's seed, so the same
:class:`~repro.fleet.spec.FleetSpec` produces a byte-identical event
trace and :class:`FleetResult` every time, on any machine, with any
profile-phase worker count.

The message layer lives here: partitions buffer traffic between a node
and the dispatcher in both directions and flush it at heal time (the
source of late duplicate completions under hedging), crashes drop a
node's buffers on the floor, hangs silence its heartbeats, and the
telemetry fault windows rewrite samples in flight (stale = repeat the
last honest sample, corrupt = scale the reported IPS/W).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Optional

from repro.analysis.stats import percentiles
from repro.fleet.agent import NodeAgent
from repro.fleet.dispatcher import Action, Dispatcher
from repro.fleet.faults import (
    FleetFaultPlan,
    FleetInjectionCounts,
    fleet_scenario,
)
from repro.fleet.profiles import ProfileTable, build_profiles
from repro.fleet.spec import FleetJob, FleetSpec
from repro.fleet.telemetry import NodeTelemetry
from repro.obs import NULL_OBS
from repro.obs import events as ev
from repro.runner.spec import stable_hash


@dataclass
class FleetResult:
    """Aggregate outcome of one fleet run (JSON-ready, hashable)."""

    fleet_key: str
    label: str
    accepted: int
    completed: int
    duplicates: int
    failed: int
    makespan_s: float
    throughput_rps: float
    useful_instructions: float
    total_energy_j: float
    wasted_energy_j: float
    ips_per_watt: float
    dispatch_latency_p50_s: float
    dispatch_latency_p99_s: float
    completion_latency_p50_s: float
    completion_latency_p99_s: float
    nodes: "list[dict]"
    stats: dict
    injections: dict
    ledger: "list[dict]"

    @property
    def completion_rate(self) -> float:
        return self.completed / self.accepted if self.accepted else 0.0

    def to_dict(self) -> dict:
        return {
            "fleet_key": self.fleet_key,
            "label": self.label,
            "accepted": self.accepted,
            "completed": self.completed,
            "duplicates": self.duplicates,
            "failed": self.failed,
            "completion_rate": round(self.completion_rate, 6),
            "makespan_s": round(self.makespan_s, 9),
            "throughput_rps": round(self.throughput_rps, 9),
            "useful_instructions": self.useful_instructions,
            "total_energy_j": round(self.total_energy_j, 9),
            "wasted_energy_j": round(self.wasted_energy_j, 9),
            "ips_per_watt": round(self.ips_per_watt, 6),
            "dispatch_latency_p50_s": round(self.dispatch_latency_p50_s, 9),
            "dispatch_latency_p99_s": round(self.dispatch_latency_p99_s, 9),
            "completion_latency_p50_s": round(self.completion_latency_p50_s, 9),
            "completion_latency_p99_s": round(self.completion_latency_p99_s, 9),
            "nodes": self.nodes,
            "stats": self.stats,
            "injections": self.injections,
            "ledger": self.ledger,
        }

    def digest(self) -> str:
        """Stable hash of the complete result (the determinism pin)."""
        return stable_hash(self.to_dict())


class FleetSim:
    """Single-threaded virtual-time executor of one fleet spec."""

    #: Hard cap on processed events — a liveness bug should fail loudly,
    #: not spin forever.
    MAX_EVENTS = 1_000_000

    def __init__(
        self,
        spec: FleetSpec,
        profiles: ProfileTable,
        obs=NULL_OBS,
        plan: "FleetFaultPlan | None" = None,
    ) -> None:
        self.spec = spec
        self.profiles = profiles
        self.obs = obs
        self.agents = {
            node: NodeAgent(node, platform, profiles)
            for node, platform in enumerate(spec.nodes)
        }
        self.dispatcher = Dispatcher(
            spec, profiles,
            {node: platform for node, platform in enumerate(spec.nodes)},
            obs=obs,
        )
        if plan is None and spec.faults is not None:
            plan = fleet_scenario(
                spec.faults,
                seed=spec.fault_seed if spec.fault_seed is not None else spec.seed,
                n_nodes=len(spec.nodes),
                duration_s=spec.n_requests / spec.arrival_rate_hz,
            )
        self.plan = plan if plan is not None else FleetFaultPlan()
        self.injections = FleetInjectionCounts()
        self._heap: "list[tuple[float, int, str, dict]]" = []
        self._seq = 0
        self._arrived = 0
        self._jobs = spec.jobs()
        #: node -> partition end time (node unreachable while t < end)
        self._partition_until: "dict[int, float]" = {}
        #: buffered node→dispatcher completions, per partitioned node
        self._to_dispatcher: "dict[int, list[tuple[str, int, float]]]" = {}
        #: buffered dispatcher→node dispatches, per partitioned node
        self._to_node: "dict[int, list[tuple[FleetJob, int]]]" = {}
        #: last honest telemetry per node (the stale fault repeats it)
        self._last_sample: "dict[int, NodeTelemetry]" = {}
        #: active telemetry fault windows: (end_s, mode, factor) per node
        self._telemetry_faults: "dict[int, tuple[float, str, float]]" = {}

    # ------------------------------------------------------------------
    # Heap plumbing
    # ------------------------------------------------------------------

    def _push(self, t_s: float, kind: str, payload: dict) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (t_s, self._seq, kind, payload))

    def _seed_events(self) -> None:
        for job in self._jobs:
            self._push(job.arrival_s, "arrival", {"job": job})
        for crash in self.plan.crashes:
            self._push(crash.time_s, "crash", {"node": crash.node})
        for hang in self.plan.hangs:
            self._push(hang.time_s, "hang",
                       {"node": hang.node, "duration_s": hang.duration_s})
        for part in self.plan.partitions:
            self._push(part.time_s, "partition",
                       {"nodes": list(part.nodes),
                        "duration_s": part.duration_s})
        for tf in self.plan.telemetry:
            self._push(tf.time_s, "telemetry_fault",
                       {"node": tf.node, "duration_s": tf.duration_s,
                        "mode": tf.mode, "factor": tf.factor})
        self._push(self.spec.heartbeat_s, "hb", {})

    # ------------------------------------------------------------------
    # Message layer
    # ------------------------------------------------------------------

    def _partitioned(self, node: int, now: float) -> bool:
        return now < self._partition_until.get(node, 0.0)

    def _process_actions(self, actions: "list[Action]", now: float) -> None:
        for action in actions:
            if action.kind == "dispatch":
                self._deliver_dispatch(action.job, action.node,
                                       action.attempt, now)
            elif action.kind == "retry":
                self._push(action.at_s, "retry",
                           {"job_id": action.job.job_id,
                            "cause": action.cause})

    def _deliver_dispatch(self, job: FleetJob, node: int, attempt: int,
                          now: float) -> None:
        agent = self.agents[node]
        if agent.crashed:
            return  # message to a dead node is lost; the detector rescues
        if self._partitioned(node, now):
            self._to_node.setdefault(node, []).append((job, attempt))
            return
        running = agent.assign(job, attempt, now)
        if running is not None:
            self._push(running.done_s, "done",
                       {"node": node, "job_id": job.job_id,
                        "attempt": attempt, "token": running.token})

    def _deliver_completion(self, node: int, job_id: str, attempt: int,
                            now: float) -> None:
        if self._partitioned(node, now):
            self._to_dispatcher.setdefault(node, []).append(
                (job_id, attempt, now))
            return
        self.dispatcher.on_complete(job_id, node, attempt, now)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------

    def _on_arrival(self, now: float, job: FleetJob) -> None:
        self._arrived += 1
        self._process_actions(self.dispatcher.submit(job, now), now)

    def _on_hb(self, now: float) -> None:
        for node in sorted(self.agents):
            agent = self.agents[node]
            if not agent.responsive(now) or self._partitioned(node, now):
                continue
            honest = agent.telemetry(now)
            sample = self._faulted_sample(honest, now)
            self._last_sample[node] = honest
            self.dispatcher.on_heartbeat(sample, now)
        self._process_actions(self.dispatcher.tick(now), now)
        if not self._all_resolved():
            self._push(now + self.spec.heartbeat_s, "hb", {})

    def _faulted_sample(self, honest: NodeTelemetry,
                        now: float) -> NodeTelemetry:
        window = self._telemetry_faults.get(honest.node)
        if window is None or now >= window[0]:
            self._telemetry_faults.pop(honest.node, None)
            return honest
        _, mode, factor = window
        if mode == "stale":
            previous = self._last_sample.get(honest.node)
            return previous if previous is not None else honest
        return NodeTelemetry(
            node=honest.node,
            t_s=honest.t_s,
            ips_per_watt=honest.ips_per_watt * factor,
            queue_depth=honest.queue_depth,
            busy=honest.busy,
        )

    def _on_done(self, now: float, node: int, job_id: str, attempt: int,
                 token: int) -> None:
        outcome = self.agents[node].complete(now, token)
        if outcome is None:
            return  # stale token: crashed or rescheduled by a hang
        _, started = outcome
        if started is not None:
            self._push(started.done_s, "done",
                       {"node": node, "job_id": started.job.job_id,
                        "attempt": started.attempt, "token": started.token})
        self._deliver_completion(node, job_id, attempt, now)

    def _on_retry(self, now: float, job_id: str, cause: str) -> None:
        self._process_actions(self.dispatcher.retry(job_id, now, cause), now)

    def _on_crash(self, now: float, node: int) -> None:
        agent = self.agents[node]
        if agent.crashed:
            return
        agent.crash()
        self._to_node.pop(node, None)
        self._to_dispatcher.pop(node, None)
        self.injections.node_crashes += 1
        if self.obs.enabled:
            self.obs.tracer.emit(ev.FAULT_INJECTED, now, kind="node_crash",
                                 node=node)

    def _on_hang(self, now: float, node: int, duration_s: float) -> None:
        agent = self.agents[node]
        rescheduled = agent.hang(now, duration_s)
        if agent.crashed:
            return
        self.injections.node_hangs += 1
        if self.obs.enabled:
            self.obs.tracer.emit(ev.FAULT_INJECTED, now, kind="node_hang",
                                 node=node, detail=f"{duration_s:.3f}s")
        if rescheduled is not None:
            self._push(rescheduled.done_s, "done",
                       {"node": node, "job_id": rescheduled.job.job_id,
                        "attempt": rescheduled.attempt,
                        "token": rescheduled.token})

    def _on_partition(self, now: float, nodes: "list[int]",
                      duration_s: float) -> None:
        end = now + duration_s
        cut = [n for n in sorted(nodes) if not self.agents[n].crashed]
        if not cut:
            return
        for node in cut:
            self._partition_until[node] = max(
                self._partition_until.get(node, 0.0), end)
        self.injections.partitions += 1
        self.injections.partitioned_nodes.extend(cut)
        if self.obs.enabled:
            self.obs.tracer.emit(
                ev.FAULT_INJECTED, now, kind="node_partition",
                count=len(cut), detail=",".join(str(n) for n in cut))
        self._push(end, "heal", {"nodes": cut})

    def _on_heal(self, now: float, nodes: "list[int]") -> None:
        for node in sorted(nodes):
            if self._partitioned(node, now) or self.agents[node].crashed:
                continue
            # Flush node→dispatcher first: a buffered completion may
            # suppress a hedge the buffered dispatch would duplicate.
            for job_id, attempt, _sent in self._to_dispatcher.pop(node, []):
                self.dispatcher.on_complete(job_id, node, attempt, now)
            for job, attempt in self._to_node.pop(node, []):
                self._deliver_dispatch(job, node, attempt, now)

    def _on_telemetry_fault(self, now: float, node: int, duration_s: float,
                            mode: str, factor: float) -> None:
        if self.agents[node].crashed:
            return
        self._telemetry_faults[node] = (now + duration_s, mode, factor)
        if mode == "stale":
            self.injections.telemetry_stale += 1
        else:
            self.injections.telemetry_corrupt += 1
        if self.obs.enabled:
            self.obs.tracer.emit(
                ev.FAULT_INJECTED, now, kind=f"telemetry_{mode}",
                node=node, detail=f"{duration_s:.3f}s")

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def _all_resolved(self) -> bool:
        if self._arrived < len(self._jobs):
            return False
        return all(r.completed or r.failed
                   for r in self.dispatcher.ledger.values())

    def run(self) -> FleetResult:
        self.dispatcher.start(0.0)
        self._seed_events()
        handlers = {
            "arrival": lambda t, p: self._on_arrival(t, p["job"]),
            "hb": lambda t, p: self._on_hb(t),
            "done": lambda t, p: self._on_done(
                t, p["node"], p["job_id"], p["attempt"], p["token"]),
            "retry": lambda t, p: self._on_retry(t, p["job_id"], p["cause"]),
            "crash": lambda t, p: self._on_crash(t, p["node"]),
            "hang": lambda t, p: self._on_hang(t, p["node"], p["duration_s"]),
            "partition": lambda t, p: self._on_partition(
                t, p["nodes"], p["duration_s"]),
            "heal": lambda t, p: self._on_heal(t, p["nodes"]),
            "telemetry_fault": lambda t, p: self._on_telemetry_fault(
                t, p["node"], p["duration_s"], p["mode"], p["factor"]),
        }
        processed = 0
        while self._heap:
            t_s, _, kind, payload = heapq.heappop(self._heap)
            handlers[kind](t_s, payload)
            processed += 1
            if processed > self.MAX_EVENTS:
                raise RuntimeError(
                    f"fleet sim exceeded {self.MAX_EVENTS} events "
                    f"(liveness bug?) at t={t_s:.3f}"
                )
        return self._build_result()

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------

    def _build_result(self) -> FleetResult:
        spec = self.spec
        ledger_rows: "list[dict]" = []
        dispatch_latencies: "list[float]" = []
        completion_latencies: "list[float]" = []
        useful_instructions = 0.0
        useful_energy = 0.0
        makespan = 0.0
        for job_id in sorted(self.dispatcher.ledger):
            record = self.dispatcher.ledger[job_id]
            row = {
                "job": job_id,
                "slot": record.job.slot,
                "workload": record.job.workload,
                "arrival_s": round(record.job.arrival_s, 9),
                "attempts": [
                    {"node": a.node, "attempt": a.attempt,
                     "dispatch_s": round(a.dispatch_s, 9),
                     "status": a.status, "hedged": a.hedged}
                    for a in record.attempts
                ],
                "completed": record.completed,
            }
            if record.first_dispatch_s >= 0:
                dispatch_latencies.append(
                    record.first_dispatch_s - record.job.arrival_s)
            if record.completed:
                row["completed_by"] = record.completed_by
                row["completed_s"] = round(record.completed_s, 9)
                completion_latencies.append(
                    record.completed_s - record.job.arrival_s)
                makespan = max(makespan, record.completed_s)
                platform = spec.nodes[record.completed_by]
                profile = self.profiles.get(record.job.slot, platform)
                useful_instructions += profile.instructions
                useful_energy += profile.energy_j
            ledger_rows.append(row)

        node_rows: "list[dict]" = []
        total_energy = 0.0
        for node in sorted(self.agents):
            agent = self.agents[node]
            total_energy += agent.stats.energy_j
            node_rows.append({
                "node": node,
                "platform": agent.platform,
                "state": ("crashed" if agent.crashed
                          else self.dispatcher.detector.state(node)),
                "jobs_completed": agent.stats.jobs_completed,
                "instructions": agent.stats.instructions,
                "energy_j": round(agent.stats.energy_j, 9),
                "busy_s": round(agent.stats.busy_s, 9),
            })

        stats = self.dispatcher.stats
        throughput = stats.completions / makespan if makespan > 0 else 0.0
        dispatch_p50, dispatch_p99 = (
            percentiles(dispatch_latencies, (0.50, 0.99))
            if dispatch_latencies else (0.0, 0.0)
        )
        completion_p50, completion_p99 = (
            percentiles(completion_latencies, (0.50, 0.99))
            if completion_latencies else (0.0, 0.0)
        )
        return FleetResult(
            fleet_key=spec.fleet_key(),
            label=spec.label(),
            accepted=stats.accepted,
            completed=stats.completions,
            duplicates=stats.duplicates,
            failed=stats.failed,
            makespan_s=makespan,
            throughput_rps=throughput,
            useful_instructions=useful_instructions,
            total_energy_j=total_energy,
            wasted_energy_j=max(0.0, total_energy - useful_energy),
            ips_per_watt=(useful_instructions / total_energy
                          if total_energy > 0 else 0.0),
            dispatch_latency_p50_s=dispatch_p50,
            dispatch_latency_p99_s=dispatch_p99,
            completion_latency_p50_s=completion_p50,
            completion_latency_p99_s=completion_p99,
            nodes=node_rows,
            stats=stats.to_dict(),
            injections={
                "node_crashes": self.injections.node_crashes,
                "node_hangs": self.injections.node_hangs,
                "partitions": self.injections.partitions,
                "telemetry_stale": self.injections.telemetry_stale,
                "telemetry_corrupt": self.injections.telemetry_corrupt,
                "partitioned_nodes": sorted(self.injections.partitioned_nodes),
                "total": self.injections.total,
            },
            ledger=ledger_rows,
        )


def run_fleet(
    spec: FleetSpec,
    obs=NULL_OBS,
    jobs: Optional[int] = None,
    cache=None,
) -> FleetResult:
    """Profile, then simulate, one complete fleet run.

    ``jobs`` and ``cache`` only affect the profile phase (real
    simulator runs through the sweep engine); the fleet simulation
    itself is single-threaded virtual time, so they cannot change the
    result — pinned by the chaos determinism suite.
    """
    profiles = build_profiles(spec, jobs=jobs, cache=cache)
    sim = FleetSim(spec, profiles, obs=obs)
    return sim.run()
