"""Scenario benchmark: the variants must earn their figure of merit.

The scenarios subsystem ships two balancer variants whose existence is
justified by measurable wins, plus an interference model whose value
shows up under SMT co-run.  This file gates all three claims at pinned
seeds:

* ``tpeq`` must cut barrier-group makespan vs stock SmartBalance by at
  least :data:`TPEQ_MAKESPAN_FLOOR_PCT`.
* ``slo`` must cut both the SLO-miss rate and p99 latency of open-loop
  traffic vs stock SmartBalance.
* Stock SmartBalance must hold a J_E (IPS/Watt) margin over ARM GTS
  when the big cluster co-runs threads SMT-style — the throughput
  -greedy racking GTS does is exactly what the energy objective avoids.

Methodology mirrors :mod:`repro.experiments.scenarios`: every cell
shares platform, base workload, scenario string and epochs, averaged
over the same pinned seeds; only the balancer differs.  Unfinished
barrier groups are charged the full horizon.

Results land in the committed ``benchmarks/BENCH_scenarios.json``
(benchmarks/out is git-ignored), so variant regressions show up as
diffs in review:

    PYTHONPATH=src python -m pytest benchmarks/bench_scenarios.py -q

``--quick`` runs the quick experiment scale for CI; quick results go
to benchmarks/out/ so the committed scorecard only ever holds
full-fidelity numbers.
"""

import json
import os

from repro.experiments.common import FULL, QUICK
from repro.experiments.scenarios import CASES, compare

#: The committed scorecard (benchmarks/out is git-ignored; this is not).
SCORECARD = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_scenarios.json"
)

#: Acceptance floors, deliberately below the measured values (quick
#: scale measures ~11% / ~5% / ~15% / ~69%; full scale ~24% / ~10% /
#: ~4% / ~69%) so seed-level noise does not flake CI while a real
#: regression still trips the gate.
TPEQ_MAKESPAN_FLOOR_PCT = 4.0
SLO_MISS_FLOOR_PCT = 1.0
SLO_P99_FLOOR_PCT = 2.0
SMT_JE_FLOOR_PCT = 25.0


def bench_scenario_variants(benchmark, quick, artifact_dir, runner_jobs):
    scale = QUICK if quick else FULL

    def measure():
        return compare(scale, jobs=runner_jobs)

    data = benchmark.pedantic(measure, rounds=1, iterations=1)

    gates = {
        "tpeq_makespan_cut_pct": TPEQ_MAKESPAN_FLOOR_PCT,
        "slo_miss_cut_pct": SLO_MISS_FLOOR_PCT,
        "slo_p99_cut_pct": SLO_P99_FLOOR_PCT,
        "smt_je_vs_gts_pct": SMT_JE_FLOOR_PCT,
    }
    for key, floor in gates.items():
        measured = data[key]
        assert measured >= floor, (
            f"{key} below its {floor}% floor: {measured:.2f}%"
        )
        benchmark.extra_info[key] = round(measured, 2)

    # The barrier win must come from placement, not from abandoning
    # the energy objective: tpeq's J_E stays within 10% of stock.
    assert data["tpeq_je_vs_stock_pct"] >= -10.0, (
        "tpeq pays too much J_E for its makespan win: "
        f"{data['tpeq_je_vs_stock_pct']:.2f}%"
    )

    scorecard = {
        "scale": scale.name,
        "platform": data["platform"],
        "threads": data["threads"],
        "n_epochs": data["n_epochs"],
        "seeds": data["seeds"],
        "scenarios": data["scenarios"],
        "balancers": {f: list(CASES[f][1]) for f in CASES},
        "floors_pct": gates,
        "headline": {
            key: round(data[key], 2)
            for key in (
                "tpeq_makespan_cut_pct",
                "tpeq_je_vs_stock_pct",
                "slo_miss_cut_pct",
                "slo_p99_cut_pct",
                "smt_je_vs_gts_pct",
            )
        },
        "families": data["families"],
        "methodology": (
            "repro.experiments.scenarios.compare: per-(family, balancer) "
            "means over pinned seeds; unfinished barrier groups charged "
            "the full horizon; only the balancer differs within a family"
        ),
    }
    # Quick (CI) runs never overwrite the committed full-fidelity file.
    target = (
        os.path.join(artifact_dir, "BENCH_scenarios.quick.json")
        if quick
        else SCORECARD
    )
    with open(target, "w") as handle:
        json.dump(scorecard, handle, indent=2, sort_keys=True)
        handle.write("\n")
