"""Table 2 — heterogeneous core configurations and derived peaks.

Regenerates the paper's core-type table: the (verbatim) architectural
parameter sets plus the peak throughput and peak power *derived from
our models*, compared against the values the paper derived from
Gem5/McPAT.
"""

from __future__ import annotations

from repro.analysis.reporting import ExperimentResult, Finding
from repro.hardware import microarch, power
from repro.hardware.features import TABLE2_TYPES
from repro.obs import user_output

#: The paper's derived rows (Gem5 + McPAT, 22 nm).
PAPER_PEAK_IPC = {"Huge": 4.18, "Big": 2.60, "Medium": 1.31, "Small": 0.91}
PAPER_PEAK_POWER_W = {"Huge": 8.62, "Big": 1.41, "Medium": 0.53, "Small": 0.095}


def run() -> ExperimentResult:
    """Build the Table 2 reproduction."""
    headers = [
        "Parameter",
        *[t.name for t in TABLE2_TYPES],
    ]
    rows = [
        ["Issue width", *[t.issue_width for t in TABLE2_TYPES]],
        ["LQ/SQ size", *[f"{t.lq_size}/{t.sq_size}" for t in TABLE2_TYPES]],
        ["IQ size", *[t.iq_size for t in TABLE2_TYPES]],
        ["ROB size", *[t.rob_size for t in TABLE2_TYPES]],
        ["Int/float regs", *[t.num_regs for t in TABLE2_TYPES]],
        ["L1$I size (KB)", *[t.l1i_kb for t in TABLE2_TYPES]],
        ["L1$D size (KB)", *[t.l1d_kb for t in TABLE2_TYPES]],
        ["Freq (MHz)", *[t.freq_mhz for t in TABLE2_TYPES]],
        ["Voltage (V)", *[t.vdd for t in TABLE2_TYPES]],
        ["Area (mm^2)", *[t.area_mm2 for t in TABLE2_TYPES]],
        [
            "Peak IPC (model)",
            *[round(microarch.peak_ipc(t), 2) for t in TABLE2_TYPES],
        ],
        ["Peak IPC (paper)", *[PAPER_PEAK_IPC[t.name] for t in TABLE2_TYPES]],
        [
            "Peak power W (model)",
            *[round(power.peak_power(t), 3) for t in TABLE2_TYPES],
        ],
        [
            "Peak power W (paper)",
            *[PAPER_PEAK_POWER_W[t.name] for t in TABLE2_TYPES],
        ],
    ]
    findings = []
    for t in TABLE2_TYPES:
        findings.append(
            Finding(
                name=f"peak IPC {t.name}",
                measured=microarch.peak_ipc(t),
                paper=PAPER_PEAK_IPC[t.name],
            )
        )
        findings.append(
            Finding(
                name=f"peak power {t.name}",
                measured=power.peak_power(t),
                paper=PAPER_PEAK_POWER_W[t.name],
                unit=" W",
            )
        )
    return ExperimentResult(
        experiment_id="table2",
        title="Table 2: Heterogeneous core configuration parameters",
        headers=headers,
        rows=rows,
        findings=tuple(findings),
        notes=(
            "Architectural parameters are the paper's verbatim; peak IPC "
            "comes from the analytical micro-architecture model and peak "
            "power from the calibrated power model."
        ),
    )


def main() -> None:
    user_output(run().render())


if __name__ == "__main__":
    main()
