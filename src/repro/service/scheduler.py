"""Job registry and worker-pool scheduler of the service.

Execution model: every distinct spec gets at most one *execution* at a
time.  Submissions of a spec that is already queued or running attach
to the live execution (**coalescing** — N clients, one simulation);
submissions of a spec the :class:`ResultCache` already holds complete
immediately without touching the pool.  Fresh executions wait in the
:class:`~repro.service.jobqueue.BoundedPriorityQueue` for one of
``jobs`` worker slots, then run ``execute_spec`` in a dedicated child
process with observability on, streaming every :mod:`repro.obs` event
back over a pipe — that live stream is what ``GET
/v1/jobs/{id}/events`` serves, and it is also how cancellation and
timeouts can kill a job *mid-epoch* (``Process.terminate`` needs no
cooperation from the simulator).

Crash handling mirrors the sweep engine's ``on_error="retry"``: a
worker that dies or reports an error is re-executed up to ``retries``
times on the deterministic backoff schedule of
:func:`repro.runner.engine.retry_delays`; the attempt count lands in
the job's result telemetry exactly like ``RunResult.attempts``.

Everything here runs on one asyncio event loop; the only concurrency
is the worker processes, which share no state with the parent beyond
their result pipe.  Determinism therefore holds end to end: a result
produced through the service is byte-identical to the same spec run
through ``run_specs`` (the e2e suite pins this).
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from typing import Optional

from repro.obs import ObsContext
from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.runner.cache import ResultCache
from repro.runner.engine import DEFAULT_RETRIES, execute_spec, retry_delays
from repro.runner.serialize import result_to_dict
from repro.runner.spec import RunSpec
from repro.service.jobqueue import BoundedPriorityQueue, QueueFull  # noqa: F401

_log = get_logger("service.scheduler")

#: Terminal jobs retained for status queries before being evicted
#: (oldest first) — keeps a long-lived service's memory bounded.
RETAIN_TERMINAL_JOBS = 1024

#: Job / execution states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
TERMINAL_STATES = (DONE, FAILED, CANCELLED)

#: Execution seam, monkeypatchable in tests (fork-started workers
#: inherit the patched binding).
_EXECUTE = execute_spec


def _mp_context():
    """Fork where available (fast, inherits the warmed predictor);
    the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


class _StreamingTracer(Tracer):
    """A tracer that forwards every event over the worker's pipe as it
    is recorded, so the parent can fan it out to live subscribers."""

    __slots__ = ("_conn",)

    def __init__(self, conn) -> None:
        super().__init__(enabled=True)
        self._conn = conn

    def emit(self, etype: str, t_s: float, **payload: object) -> None:
        super().emit(etype, t_s, **payload)
        try:
            self._conn.send(("event", self.events[-1]))
        except (OSError, ValueError):
            pass  # parent went away; keep simulating, result send will fail loudly


def _job_worker(conn, spec: RunSpec) -> None:
    """Child-process body: run one spec, stream events, send the result."""
    try:
        obs = ObsContext(tracer=_StreamingTracer(conn))
        result = _EXECUTE(spec, obs=obs)
        conn.send((
            "result",
            result_to_dict(result),
            obs.metrics.deterministic_snapshot(),
        ))
    except BaseException as exc:  # noqa: BLE001 — disposition is the parent's
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (OSError, ValueError):
            pass
    finally:
        conn.close()


class _Execution:
    """One in-flight run of one distinct spec (possibly many jobs)."""

    def __init__(self, spec: RunSpec, priority: int,
                 timeout_s: Optional[float]) -> None:
        self.spec = spec
        self.spec_key = spec.spec_key()
        self.priority = priority
        self.timeout_s = timeout_s
        self.state = QUEUED
        self.attempts = 0
        self.error: Optional[str] = None
        self.result: Optional[dict] = None
        self.run_metrics: Optional[dict] = None
        self.events: "list[dict]" = []
        self.jobs: "list[Job]" = []
        self.subscribers: "set[asyncio.Queue]" = set()
        self.process = None
        self.conn = None
        self.timeout_handle = None
        self.cancel_requested = False
        self.timed_out = False
        self.started_s: Optional[float] = None
        self.finished_s: Optional[float] = None


class Job:
    """One client submission, attached to an execution."""

    def __init__(self, job_id: str, execution: _Execution,
                 coalesced: bool, from_cache: bool) -> None:
        self.id = job_id
        self.execution = execution
        self.coalesced = coalesced
        self.from_cache = from_cache
        self.created_s = time.time()

    @property
    def spec(self) -> RunSpec:
        return self.execution.spec

    @property
    def state(self) -> str:
        return self.execution.state

    def to_dict(self, with_result: bool = True) -> dict:
        """JSON view served by ``GET /v1/jobs[/{id}]``."""
        from repro.service.api import spec_to_dict

        execution = self.execution
        data = {
            "id": self.id,
            "status": execution.state,
            "spec_key": execution.spec_key,
            "spec": spec_to_dict(execution.spec),
            "label": execution.spec.label(),
            "priority": execution.priority,
            "timeout_s": execution.timeout_s,
            "attempts": execution.attempts,
            "coalesced": self.coalesced,
            "from_cache": self.from_cache,
            "created_s": self.created_s,
            "started_s": execution.started_s,
            "finished_s": execution.finished_s,
            "n_events": len(execution.events),
            "error": execution.error,
        }
        if with_result and execution.state == DONE:
            data["result"] = execution.result
            data["run_metrics"] = execution.run_metrics
        return data


class Scheduler:
    """The event-loop-resident job scheduler (see module docstring)."""

    def __init__(
        self,
        jobs: int = 1,
        queue_depth: int = 64,
        cache: Optional[ResultCache] = None,
        retries: int = DEFAULT_RETRIES,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.slots = jobs
        self.queue = BoundedPriorityQueue(queue_depth)
        self.cache = cache
        self.retries = retries
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.draining = False
        self._closed = False
        self._mp = _mp_context()
        self._jobs: "dict[str, Job]" = {}
        self._terminal_order: "list[str]" = []
        self._active: "dict[str, _Execution]" = {}
        self._running: "set[_Execution]" = set()
        self._counter = 0
        self._idle = asyncio.Event()
        self._idle.set()

    # ------------------------------------------------------------------
    # Submission / registry
    # ------------------------------------------------------------------

    def submit(self, spec: RunSpec, priority: int = 0,
               timeout_s: Optional[float] = None) -> Job:
        """Admit one job; raises :class:`QueueFull` at the bound and
        ``RuntimeError`` while draining."""
        if self.draining:
            raise RuntimeError("service is draining; not admitting jobs")
        self.metrics.inc("service.jobs.submitted")
        key = spec.spec_key()

        execution = self._active.get(key)
        if execution is not None:
            job = self._register(Job(self._next_id(), execution,
                                     coalesced=True, from_cache=False))
            execution.jobs.append(job)
            self.metrics.inc("service.jobs.coalesced")
            return job

        if self.cache is not None:
            hit = self.cache.get(spec)
            if hit is not None:
                self.metrics.inc("service.cache.hits")
                execution = _Execution(spec, priority, timeout_s)
                execution.state = DONE
                execution.attempts = hit.attempts
                execution.result = result_to_dict(hit)
                execution.finished_s = time.time()
                job = self._register(Job(self._next_id(), execution,
                                         coalesced=False, from_cache=True))
                execution.jobs.append(job)
                self._note_terminal(job)
                self.metrics.inc("service.jobs.completed")
                return job
            self.metrics.inc("service.cache.misses")

        execution = _Execution(spec, priority, timeout_s)
        try:
            self.queue.push(execution, priority)
        except QueueFull:
            self.metrics.inc("service.jobs.rejected")
            raise
        self._active[key] = execution
        self._idle.clear()
        job = self._register(Job(self._next_id(), execution,
                                 coalesced=False, from_cache=False))
        execution.jobs.append(job)
        self.metrics.set_gauge("service.queue.depth", len(self.queue))
        self._dispatch()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def jobs(self) -> "list[Job]":
        return list(self._jobs.values())

    def _next_id(self) -> str:
        self._counter += 1
        return f"j{self._counter:06d}"

    def _register(self, job: Job) -> Job:
        self._jobs[job.id] = job
        return job

    def _note_terminal(self, job: Job) -> None:
        self._terminal_order.append(job.id)
        while len(self._terminal_order) > RETAIN_TERMINAL_JOBS:
            evicted = self._terminal_order.pop(0)
            self._jobs.pop(evicted, None)

    # ------------------------------------------------------------------
    # Dispatch / worker lifecycle
    # ------------------------------------------------------------------

    def _dispatch(self) -> None:
        if self._closed:
            return
        while len(self._running) < self.slots:
            execution = self.queue.pop()
            self.metrics.set_gauge("service.queue.depth", len(self.queue))
            if execution is None:
                return
            self._running.add(execution)
            self._start(execution)

    def _start(self, execution: _Execution) -> None:
        if execution.cancel_requested or self._closed:
            execution.cancel_requested = True
            self._finalize(execution)
            return
        execution.state = RUNNING
        execution.attempts += 1
        if execution.started_s is None:
            execution.started_s = time.time()
        self.metrics.inc("service.executions.started")
        self.metrics.set_gauge("service.jobs.running", len(self._running))
        parent_conn, child_conn = self._mp.Pipe(duplex=False)
        process = self._mp.Process(
            target=_job_worker, args=(child_conn, execution.spec), daemon=True
        )
        execution.process = process
        execution.conn = parent_conn
        process.start()
        child_conn.close()
        loop = asyncio.get_event_loop()
        loop.add_reader(parent_conn.fileno(), self._on_readable, execution)
        if execution.timeout_s is not None:
            execution.timeout_handle = loop.call_later(
                execution.timeout_s, self._on_timeout, execution
            )
        _log.info(
            "started %s (%s, attempt %d)",
            execution.jobs[0].id if execution.jobs else "?",
            execution.spec.label(), execution.attempts,
        )

    def _on_readable(self, execution: _Execution) -> None:
        conn = execution.conn
        try:
            while conn.poll():
                message = conn.recv()
                kind = message[0]
                if kind == "event":
                    self._fan_out(execution, message[1])
                elif kind == "result":
                    execution.result = message[1]
                    execution.run_metrics = message[2]
                elif kind == "error":
                    execution.error = message[1]
        except (EOFError, OSError):
            self._reap(execution)

    def _fan_out(self, execution: _Execution, event: dict) -> None:
        execution.events.append(event)
        self.metrics.inc("service.events.streamed")
        for queue in list(execution.subscribers):
            try:
                queue.put_nowait(event)
            except asyncio.QueueFull:
                execution.subscribers.discard(queue)

    def _on_timeout(self, execution: _Execution) -> None:
        if execution.state != RUNNING:
            return
        execution.timed_out = True
        _log.warning(
            "job %s exceeded its %.1fs timeout; terminating",
            execution.spec.label(), execution.timeout_s,
        )
        self._terminate(execution)

    def _terminate(self, execution: _Execution) -> None:
        process = execution.process
        if process is not None and process.is_alive():
            process.terminate()
        # The pipe EOF triggers _reap, which settles the final state.

    def _reap(self, execution: _Execution) -> None:
        """Pipe hit EOF: the worker exited.  Settle or retry."""
        loop = asyncio.get_event_loop()
        if execution.conn is not None:
            loop.remove_reader(execution.conn.fileno())
            execution.conn.close()
            execution.conn = None
        if execution.timeout_handle is not None:
            execution.timeout_handle.cancel()
            execution.timeout_handle = None
        if execution.process is not None:
            execution.process.join(timeout=1.0)
            execution.process = None

        if execution.result is not None:
            execution.result["attempts"] = execution.attempts
            if self.cache is not None:
                from repro.runner.serialize import result_from_dict

                try:
                    self.cache.put(
                        execution.spec, result_from_dict(execution.result)
                    )
                except (OSError, TypeError, ValueError) as exc:
                    _log.warning("could not cache %s: %s",
                                 execution.spec_key, exc)
            self._finalize(execution)
            return
        if execution.cancel_requested or execution.timed_out:
            self._finalize(execution)
            return

        # Crashed (reported error or abnormal death): retry on the
        # engine's deterministic backoff schedule, then give up.
        delays = retry_delays(self.retries)
        failed_attempts = execution.attempts
        if failed_attempts <= len(delays):
            delay = delays[failed_attempts - 1]
            self.metrics.inc("service.jobs.retried")
            _log.warning(
                "job %s attempt %d failed (%s); retrying in %.3fs",
                execution.spec.label(), failed_attempts,
                execution.error or "worker died", delay,
            )
            execution.error = None
            loop.call_later(delay, self._start, execution)
            return
        execution.error = (
            f"failed after {failed_attempts} attempt(s): "
            f"{execution.error or 'worker died'}"
        )
        self._finalize(execution)

    def _finalize(self, execution: _Execution) -> None:
        if execution.cancel_requested:
            execution.state = CANCELLED
            self.metrics.inc("service.jobs.cancelled", len(execution.jobs))
        elif execution.result is not None:
            execution.state = DONE
            self.metrics.inc("service.executions.completed")
            self.metrics.inc("service.jobs.completed", len(execution.jobs))
        else:
            if execution.timed_out and execution.error is None:
                execution.error = (
                    f"timed out after {execution.timeout_s}s"
                )
            execution.state = FAILED
            self.metrics.inc("service.jobs.failed", len(execution.jobs))
        execution.finished_s = time.time()
        self._active.pop(execution.spec_key, None)
        self._running.discard(execution)
        self.metrics.set_gauge("service.jobs.running", len(self._running))
        for job in execution.jobs:
            self._note_terminal(job)
        for queue in list(execution.subscribers):
            try:
                queue.put_nowait(None)
            except asyncio.QueueFull:
                pass
        execution.subscribers.clear()
        _log.info("job %s -> %s", execution.spec.label(), execution.state)
        self._dispatch()
        if not self._active:
            self._idle.set()

    # ------------------------------------------------------------------
    # Cancellation / event streams / drain
    # ------------------------------------------------------------------

    def cancel(self, job_id: str) -> Optional[Job]:
        """Cancel a job (and its execution, which every coalesced
        sibling shares).  Returns the job, or ``None`` if unknown;
        cancelling a terminal job is a no-op."""
        job = self._jobs.get(job_id)
        if job is None:
            return None
        execution = job.execution
        if execution.state in TERMINAL_STATES:
            return job
        execution.cancel_requested = True
        if execution.state == QUEUED:
            self.queue.remove(execution)
            self.metrics.set_gauge("service.queue.depth", len(self.queue))
            self._finalize(execution)
        else:
            self._terminate(execution)
        return job

    def subscribe(self, job: Job) -> "asyncio.Queue":
        """An event queue for ``job``: buffered events are replayed
        first, live ones follow, ``None`` marks the end of stream."""
        queue: "asyncio.Queue" = asyncio.Queue()
        for event in job.execution.events:
            queue.put_nowait(event)
        if job.execution.state in TERMINAL_STATES:
            queue.put_nowait(None)
        else:
            job.execution.subscribers.add(queue)
        return queue

    def unsubscribe(self, job: Job, queue: "asyncio.Queue") -> None:
        job.execution.subscribers.discard(queue)

    async def drain(self, timeout_s: Optional[float] = None) -> bool:
        """Stop admitting and wait for in-flight work to finish.

        Queued executions still run (they were admitted); returns True
        once idle, False if ``timeout_s`` expired first — callers then
        escalate to :meth:`close`.
        """
        self.draining = True
        try:
            if timeout_s is None:
                await self._idle.wait()
            else:
                await asyncio.wait_for(self._idle.wait(), timeout_s)
        except asyncio.TimeoutError:
            return False
        return True

    def close(self) -> None:
        """Hard stop: cancel the queue, terminate running workers."""
        self.draining = True
        self._closed = True
        while True:
            execution = self.queue.pop()
            if execution is None:
                break
            execution.cancel_requested = True
            self._finalize(execution)
        for execution in list(self._running):
            execution.cancel_requested = True
            self._terminate(execution)
