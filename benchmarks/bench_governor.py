"""Governor benchmark: joint placement + DVFS gain over fixed V/f.

The governor subsystem (:mod:`repro.governor`) exists to reclaim the
energy the fixed-V/f balancer leaves on the table — clusters running
at nominal frequency for workloads that cannot use it.  This file
gates exactly that claim: the ``two_level`` governor must deliver at
least **10 % more J_E (IPS/Watt)** than the stock fixed-V/f
SmartBalance, per workload and in the mean, at a pinned seed.

Methodology
-----------
* Same spec per pair — platform ``dvfsquad`` (the paper's quad HMP
  with one V/f knob per core type), same workload, threads, seed and
  epoch count; only the governor strategy differs.
* Runs go through :func:`repro.runner.engine.execute_spec` — the same
  resolution path as the CLI — so the benchmark measures what users
  get, not a hand-tuned harness.
* The fixed-mode identity is asserted alongside the gain: a
  ``governor="fixed"`` spec and the governor-free spec must produce
  byte-identical metric digests (the default-off contract).

Results land in the committed ``benchmarks/BENCH_governor.json``
(benchmarks/out is git-ignored), so governor regressions show up as
diffs in review:

    PYTHONPATH=src python -m pytest benchmarks/bench_governor.py -q

``--quick`` drops to one workload and fewer epochs for CI; quick
results go to benchmarks/out/ so the committed scorecard only ever
holds full-fidelity numbers.
"""

import json
import os

from repro.runner.engine import execute_spec
from repro.runner.serialize import metrics_digest
from repro.runner.spec import RunSpec

#: The committed scorecard (benchmarks/out is git-ignored; this is not).
SCORECARD = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "BENCH_governor.json"
)

PLATFORM = "dvfsquad"
THREADS = 8
SEED = 0

FULL_WORKLOADS = ("HTHI", "MTMI", "LTLI")
QUICK_WORKLOADS = ("MTMI",)
FULL_EPOCHS = 12
QUICK_EPOCHS = 6

#: The acceptance gate: two_level J_E gain over fixed V/f, per
#: workload and in the mean.
GAIN_FLOOR_PCT = 10.0


def _spec(workload: str, governor: str, n_epochs: int) -> RunSpec:
    return RunSpec(
        workload=workload,
        platform=PLATFORM,
        threads=THREADS,
        balancer="smartbalance",
        n_epochs=n_epochs,
        seed=SEED,
        governor=governor,
    )


def measure_row(workload: str, n_epochs: int) -> dict:
    fixed = execute_spec(_spec(workload, "fixed", n_epochs))
    governed = execute_spec(_spec(workload, "two_level", n_epochs))
    gain_pct = 100.0 * (governed.ips_per_watt / fixed.ips_per_watt - 1.0)
    stats = governed.governor or {}
    return {
        "workload": workload,
        "fixed_ips_per_watt": fixed.ips_per_watt,
        "governed_ips_per_watt": governed.ips_per_watt,
        "gain_pct": round(gain_pct, 2),
        "fixed_power_w": round(fixed.average_power_w, 4),
        "governed_power_w": round(governed.average_power_w, 4),
        "opp_changes": stats.get("opp_changes", 0),
        "transition_energy_j": stats.get("transition_energy_j", 0.0),
        "final_levels": stats.get("levels", {}),
    }


def bench_governor_gain(benchmark, quick, artifact_dir):
    workloads = QUICK_WORKLOADS if quick else FULL_WORKLOADS
    n_epochs = QUICK_EPOCHS if quick else FULL_EPOCHS

    def measure():
        return [measure_row(w, n_epochs) for w in workloads]

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Gate 1: the default-off contract.  governor="fixed" must be
    # byte-identical to the pre-governor pipeline (the spec differs
    # only in cache key, never in simulated content).
    base = RunSpec(
        workload=workloads[0],
        platform=PLATFORM,
        threads=THREADS,
        balancer="smartbalance",
        n_epochs=n_epochs,
        seed=SEED,
    )
    assert base.governor == "fixed"
    fixed_digest = metrics_digest(execute_spec(base))
    explicit_digest = metrics_digest(
        execute_spec(_spec(workloads[0], "fixed", n_epochs))
    )
    assert fixed_digest == explicit_digest, (
        "governor='fixed' diverged from the default spec: "
        f"{fixed_digest} != {explicit_digest}"
    )

    # Gate 2: the reason the subsystem exists.
    for row in rows:
        assert row["gain_pct"] >= GAIN_FLOOR_PCT, (
            f"two_level below the {GAIN_FLOOR_PCT}% J_E floor on "
            f"{row['workload']}: {row['gain_pct']}%"
        )
        benchmark.extra_info[f"gain_{row['workload']}_pct"] = row["gain_pct"]
    mean_gain = sum(r["gain_pct"] for r in rows) / len(rows)
    assert mean_gain >= GAIN_FLOOR_PCT
    benchmark.extra_info["mean_gain_pct"] = round(mean_gain, 2)

    scorecard = {
        "platform": PLATFORM,
        "threads": THREADS,
        "seed": SEED,
        "n_epochs": n_epochs,
        "strategy": "two_level",
        "gain_floor_pct": GAIN_FLOOR_PCT,
        "mean_gain_pct": round(mean_gain, 2),
        "fixed_mode_digest": fixed_digest,
        "methodology": (
            "ips_per_watt of execute_spec pairs differing only in the "
            "governor field; fixed-mode byte-identity asserted against "
            "the default spec"
        ),
        "rows": rows,
    }
    # Quick (CI) runs never overwrite the committed full-fidelity file.
    target = (
        os.path.join(artifact_dir, "BENCH_governor.quick.json")
        if quick
        else SCORECARD
    )
    with open(target, "w") as handle:
        json.dump(scorecard, handle, indent=2, sort_keys=True)
        handle.write("\n")
