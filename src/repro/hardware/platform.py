"""Chip topology: cores, clusters and platform presets.

Builds the simulated MPSoC the kernel substrate runs on.  Provides the
two platforms of the paper's evaluation —

* the **quad-core HMP** with the four Table 2 core types (Section 6),
* the **octa-core big.LITTLE** (4 big + 4 little) of Section 6.1,

plus parameterised builders for the 2–128-core scalability sweep of
Fig. 7(b).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.hardware.features import (
    ARM_BIG,
    ARM_LITTLE,
    BIG,
    HUGE,
    MEDIUM,
    SMALL,
    TABLE2_TYPES,
    CoreType,
)


@dataclass(frozen=True)
class Core:
    """One physical core instance: an id, a type and a cluster label.

    The mapping ``core -> type`` is the γ function of Section 3.
    """

    core_id: int
    core_type: CoreType
    cluster: str = "default"

    @property
    def name(self) -> str:
        return f"c{self.core_id}({self.core_type.name})"


class Platform:
    """A heterogeneous MPSoC: an ordered set of cores.

    The platform is purely structural; dynamic state (run queues,
    counters, energy) lives in the kernel simulator.
    """

    def __init__(self, cores: Sequence[Core], name: str = "custom") -> None:
        if not cores:
            raise ValueError("a platform needs at least one core")
        ids = [c.core_id for c in cores]
        if ids != list(range(len(cores))):
            raise ValueError(
                f"core ids must be contiguous starting at 0, got {ids}"
            )
        self.name = name
        self.cores: tuple[Core, ...] = tuple(cores)

    def __len__(self) -> int:
        return len(self.cores)

    def __iter__(self):
        return iter(self.cores)

    def __getitem__(self, core_id: int) -> Core:
        return self.cores[core_id]

    @property
    def core_types(self) -> tuple[CoreType, ...]:
        """Distinct core types present, in first-appearance order."""
        seen: dict[str, CoreType] = {}
        for core in self.cores:
            seen.setdefault(core.core_type.name, core.core_type)
        return tuple(seen.values())

    @property
    def clusters(self) -> dict[str, tuple[Core, ...]]:
        """Cores grouped by cluster label."""
        groups: dict[str, list[Core]] = {}
        for core in self.cores:
            groups.setdefault(core.cluster, []).append(core)
        return {name: tuple(cs) for name, cs in groups.items()}

    def cores_of_type(self, core_type: CoreType) -> tuple[Core, ...]:
        return tuple(c for c in self.cores if c.core_type.name == core_type.name)

    def describe(self) -> str:
        """One-line human-readable topology summary."""
        parts = []
        for cluster, cores in self.clusters.items():
            types = {}
            for core in cores:
                types[core.core_type.name] = types.get(core.core_type.name, 0) + 1
            desc = "+".join(f"{n}x{t}" for t, n in types.items())
            parts.append(f"{cluster}[{desc}]")
        return f"{self.name}: " + " ".join(parts)


def build_platform(
    type_counts: Iterable[tuple[CoreType, int]],
    name: str = "custom",
    cluster_per_type: bool = False,
) -> Platform:
    """Build a platform from ``(core_type, count)`` pairs.

    With ``cluster_per_type`` each type gets its own cluster label
    (big.LITTLE-style homogeneous clusters); otherwise all cores share
    one cluster.
    """
    cores: list[Core] = []
    for core_type, count in type_counts:
        if count < 0:
            raise ValueError(f"negative core count for {core_type.name}")
        cluster = core_type.name if cluster_per_type else "default"
        for _ in range(count):
            cores.append(Core(core_id=len(cores), core_type=core_type, cluster=cluster))
    return Platform(cores, name=name)


def quad_hmp() -> Platform:
    """The paper's 4-core, 4-type HMP (Huge + Big + Medium + Small)."""
    return build_platform(
        [(HUGE, 1), (BIG, 1), (MEDIUM, 1), (SMALL, 1)], name="quad-hmp"
    )


def big_little_octa() -> Platform:
    """Octa-core big.LITTLE: 4 big + 4 little, clustered per type."""
    return build_platform(
        [(ARM_BIG, 4), (ARM_LITTLE, 4)],
        name="bigLITTLE-octa",
        cluster_per_type=True,
    )


def scaled_hmp(n_cores: int) -> Platform:
    """HMP with ``n_cores`` cores cycling through the Table 2 types.

    Used for the 2–128-core scalability analysis of Fig. 7(b).  Cores
    are assigned types round-robin (Huge, Big, Medium, Small, Huge, …)
    so every scale keeps the full heterogeneity of the quad platform.
    """
    if n_cores < 1:
        raise ValueError(f"need at least one core, got {n_cores}")
    cores = [
        Core(core_id=i, core_type=TABLE2_TYPES[i % len(TABLE2_TYPES)])
        for i in range(n_cores)
    ]
    return Platform(cores, name=f"hmp-{n_cores}")
