"""Plain-text table and bar-chart rendering.

The benchmark harness regenerates the paper's tables and figures as
text: tables as aligned ASCII grids, bar figures as horizontal ASCII
bar charts (one bar per benchmark/configuration, like the paper's
Figs. 4–5).
"""

from __future__ import annotations

from typing import Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    if not headers:
        raise ValueError("need at least one column")
    str_rows = [[_cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    title: Optional[str] = None,
    unit: str = "",
    width: int = 50,
) -> str:
    """Render a horizontal ASCII bar chart (one bar per label)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        raise ValueError("need at least one bar")
    if width < 1:
        raise ValueError("width must be positive")
    peak = max(max(values), 1e-30)
    label_w = max(len(l) for l in labels)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    for label, value in zip(labels, values):
        bar = "#" * max(int(round(width * value / peak)), 0)
        lines.append(f"{label.ljust(label_w)} | {bar} {value:.4g}{unit}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
