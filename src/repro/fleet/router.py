"""Routing policies: where the dispatcher puts the next job.

The energy-aware policy is the fleet-level instance of the paper's
predict-then-optimize loop: predict each candidate node's IPS/W for
*this* request (profiled per-platform operating point, corrected by
the node's live telemetry and discounted for staleness), penalise the
backlog already queued there, and place the job where predicted
fleet-level J_E gains the most.  Round-robin and least-loaded are the
energy-blind baselines — and round-robin doubles as the graceful
degradation target when telemetry quorum is lost.

Every policy is a pure function of its inputs; candidate lists arrive
sorted, ties break on node id.  Routing is therefore replayable from
the spec alone.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fleet.profiles import ProfileTable
from repro.fleet.spec import FleetJob, FleetSpec
from repro.fleet.telemetry import TelemetryStore


@dataclass
class RouteContext:
    """Everything a policy may consult when scoring candidates."""

    spec: FleetSpec
    profiles: ProfileTable
    telemetry: TelemetryStore
    #: node -> platform name
    platforms: "dict[int, str]"
    #: node -> jobs the dispatcher believes are queued or running there
    backlog: "dict[int, int]"
    now: float


def energy_score(node: int, job: FleetJob, ctx: RouteContext) -> float:
    """Predicted J_E contribution of placing ``job`` on ``node``.

    ``profiled IPS/W × health × 1/(1 + backlog)``: the profiled
    per-(slot, platform) operating point carries the heterogeneity,
    the health factor folds in live telemetry (reported over profiled
    nominal, staleness-discounted, clamped to [0.1, 2.0]), and the
    backlog divisor spreads load so one efficient node does not become
    the queueing bottleneck.
    """
    platform = ctx.platforms[node]
    profiled = ctx.profiles.get(job.slot, platform).ips_per_watt
    nominal = ctx.profiles.nominal_ips_per_watt(platform)
    reported = ctx.telemetry.discounted_ips_per_watt(node, ctx.now)
    health = 1.0
    if reported is not None and nominal > 0:
        health = min(2.0, max(0.1, reported / nominal))
    backlog = ctx.backlog.get(node, 0)
    return profiled * health / (1.0 + backlog)


def select_energy(job: FleetJob, candidates: "list[int]", ctx: RouteContext) -> int:
    best = candidates[0]
    best_score = float("-inf")
    for node in candidates:
        score = energy_score(node, job, ctx)
        if score > best_score:
            best, best_score = node, score
    return best


class RoundRobin:
    """Stateful cycling over whatever candidates are offered."""

    def __init__(self) -> None:
        self._next = 0

    def select(self, job: FleetJob, candidates: "list[int]",
               ctx: RouteContext) -> int:
        node = candidates[self._next % len(candidates)]
        self._next += 1
        return node


def select_least_loaded(job: FleetJob, candidates: "list[int]",
                        ctx: RouteContext) -> int:
    return min(candidates, key=lambda node: (ctx.backlog.get(node, 0), node))


class Router:
    """Policy dispatcher with quorum-driven graceful degradation."""

    def __init__(self, policy: str) -> None:
        self.policy = policy
        self._round_robin = RoundRobin()

    def select(
        self,
        job: FleetJob,
        candidates: "list[int]",
        ctx: RouteContext,
        degraded: bool,
    ) -> int:
        """Pick a node.  ``degraded`` (telemetry quorum lost) forces
        round-robin regardless of the configured policy — with the
        energy view dark, pretending to optimise J_E is worse than
        spreading load evenly."""
        if not candidates:
            raise ValueError("no candidate nodes")
        if degraded or self.policy == "round_robin":
            return self._round_robin.select(job, candidates, ctx)
        if self.policy == "least_loaded":
            return select_least_loaded(job, candidates, ctx)
        return select_energy(job, candidates, ctx)
