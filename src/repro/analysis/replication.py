"""Multi-seed replication: mean, deviation and confidence intervals.

The paper reports single-run numbers; a reproduction should show how
stable its own numbers are across sensing-noise seeds and workload
jitter.  :func:`replicate` runs any seed-parameterised measurement
several times and reports summary statistics with a bootstrap
confidence interval; :func:`compare_with_replication` applies it to the
balancer-improvement measurements the figures are built from.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.stats import mean, stdev


@dataclass(frozen=True)
class Replication:
    """Summary of one replicated measurement."""

    values: tuple[float, ...]
    mean: float
    stdev: float
    ci_low: float
    ci_high: float
    confidence: float

    @property
    def n(self) -> int:
        return len(self.values)

    def render(self, unit: str = "") -> str:
        return (
            f"{self.mean:.4g}{unit} ± {self.stdev:.2g} "
            f"[{self.ci_low:.4g}, {self.ci_high:.4g}] "
            f"({int(100 * self.confidence)} % CI, n={self.n})"
        )


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for the mean."""
    values = list(values)
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_resamples < 1:
        raise ValueError(f"n_resamples must be >= 1, got {n_resamples}")
    rng = random.Random(seed)
    n = len(values)
    means = sorted(
        mean([values[rng.randrange(n)] for _ in range(n)])
        for _ in range(n_resamples)
    )
    alpha = (1.0 - confidence) / 2.0
    lo_index = min(int(alpha * n_resamples), n_resamples - 1)
    hi_index = min(int((1.0 - alpha) * n_resamples), n_resamples - 1)
    return means[lo_index], means[hi_index]


def replicate(
    measure: Callable[[int], float],
    n_seeds: int = 5,
    confidence: float = 0.95,
    base_seed: int = 0,
) -> Replication:
    """Run ``measure(seed)`` across seeds and summarise.

    ``measure`` receives ``base_seed, base_seed+1, …`` and returns one
    scalar per call.
    """
    if n_seeds < 1:
        raise ValueError(f"need at least one seed, got {n_seeds}")
    values = tuple(measure(base_seed + i) for i in range(n_seeds))
    low, high = bootstrap_ci(values, confidence=confidence)
    return Replication(
        values=values,
        mean=mean(values),
        stdev=stdev(values),
        ci_low=low,
        ci_high=high,
        confidence=confidence,
    )


def compare_with_replication(
    platform_factory: Callable[[], object],
    workload_factory: Callable[[int], list],
    baseline_factory: Callable[[], object],
    candidate_factory: Callable[[], object],
    n_epochs: int = 20,
    n_seeds: int = 5,
) -> Replication:
    """Replicated percent IPS/W improvement of candidate over baseline.

    Each seed parameterises both the workload jitter and the sensing
    noise, so the interval covers the full stochastic surface.
    """
    from repro.kernel.simulator import SimulationConfig, System

    def measure(seed: int) -> float:
        results = {}
        for factory in (baseline_factory, candidate_factory):
            balancer = factory()
            system = System(
                platform_factory(),
                workload_factory(seed),
                balancer,
                SimulationConfig(seed=seed),
            )
            results[balancer.name] = system.run(n_epochs=n_epochs)
        names = list(results)
        return results[names[1]].improvement_over(results[names[0]])

    return replicate(measure, n_seeds=n_seeds)
