"""Vanilla Linux load balancer (the paper's baseline).

Emulates the stock CFS ``rebalance_domains()`` behaviour on an SMP
kernel that has no notion of core capability: it equalises *load*
(utilisation-weighted task weight) across cores, pulling tasks from the
busiest run queue onto the least-loaded one whenever the imbalance
exceeds a threshold.  On a heterogeneous platform this "evenly
distributes the workload among cores even if the cores have distinct
processing capabilities" (paper Section 1) — the inefficiency
SmartBalance attacks.

Runs every scheduling period, like the tick-driven kernel balancer.
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.balancers.base import LoadBalancer, Placement
from repro.kernel.view import SystemView, TaskView

#: Relative imbalance tolerated before tasks are pulled, mirroring the
#: kernel's imbalance_pct (125 %).
IMBALANCE_PCT = 1.25


class VanillaBalancer(LoadBalancer):
    """Capability-unaware load-equalising balancer."""

    name = "vanilla"
    interval_periods = 1

    def __init__(self, imbalance_pct: float = IMBALANCE_PCT) -> None:
        if imbalance_pct < 1.0:
            raise ValueError(
                f"imbalance_pct must be >= 1.0, got {imbalance_pct}"
            )
        self.imbalance_pct = imbalance_pct

    def rebalance(self, view: SystemView) -> Optional[Placement]:
        loads = {c.core_id: 0.0 for c in view.cores}
        members: dict[int, list[TaskView]] = {c.core_id: [] for c in view.cores}
        for task in view.tasks:
            loads[task.core_id] += self._task_load(task)
            members[task.core_id].append(task)

        placement: Placement = {}
        # Iterate busiest->idlest pulls until balanced, bounding the
        # number of sweeps like the kernel bounds nr_balance_failed.
        for _ in range(len(view.tasks)):
            busiest = max(loads, key=lambda c: loads[c])
            idlest = min(loads, key=lambda c: loads[c])
            if busiest == idlest:
                break
            if loads[idlest] > 0 and loads[busiest] <= loads[idlest] * self.imbalance_pct:
                break
            movable = [t for t in members[busiest] if t.tid not in placement]
            if not movable:
                break
            # Pull the task that best halves the gap, but never move a
            # task whose load meets or exceeds the gap — that would
            # merely invert the imbalance and ping-pong forever.
            gap = loads[busiest] - loads[idlest]
            candidates = [t for t in movable if self._task_load(t) < gap]
            if not candidates:
                break
            task = min(
                candidates,
                key=lambda t: abs(2 * self._task_load(t) - gap),
            )
            load = self._task_load(task)
            placement[task.tid] = idlest
            members[busiest].remove(task)
            members[idlest].append(task)
            loads[busiest] -= load
            loads[idlest] += load
        return placement or None

    @staticmethod
    def _task_load(task: TaskView) -> float:
        """CFS load contribution.

        Linux 2.6 (the paper's kernel) balances on the sum of task
        *weights* — no utilisation scaling (PELT arrived in 3.8) and no
        notion of core capability.  With default nice values the result
        is the even thread-count distribution the paper describes.
        """
        return task.weight
