"""Scenario-aware SmartBalance variants: tpeq and slo.

Both variants keep the paper's pipeline intact — same sensing, same
predictor, same annealer, same adoption gate — and intervene at one
point only: the IPS matrix the objective scores.  Scaling a thread's
predicted-IPS row makes its placement *worth more* to the optimiser,
steering capable cores toward the threads that currently matter most,
without touching the energy model or the watchdog's prediction-error
accounting (``_last_prediction`` is captured from the unscaled
matrices before :meth:`_optimize` runs).

* :class:`TpeqBalance` ("thread progress equalisation", after Lee et
  al.'s TPEq): in a barrier-synchronised program the group's makespan
  is its *slowest* member, so each member's row is scaled by its
  progress deficit against the group leader.  Laggards get big cores;
  threads already at the barrier get none of the weighting.
* :class:`SloAwareBalance`: open-loop request threads carry an SLO
  slack fraction; rows are scaled by deadline urgency so requests
  about to miss get capable cores and fresh requests yield.

Threads without the corresponding scenario observable (``progress_frac``
/ ``slo_slack_frac`` on their :class:`~repro.kernel.view.TaskView`) are
left unscaled, so either variant degrades to stock SmartBalance on a
scenario-free workload.
"""

from __future__ import annotations

import dataclasses

from repro.core.balancer import SmartBalance

__all__ = ["TpeqBalance", "SloAwareBalance", "TPEQ_GAIN", "SLO_GAIN"]

#: Peak IPS-row multiplier is ``1 + gain``: a thread a full interval
#: behind the group leader looks 9x as valuable to place well.  Tuned
#: on the barrier family (5-seed makespan mean): 8.0 beats both 3.0
#: and stock SmartBalance.
TPEQ_GAIN = 8.0
#: Peak urgency multiplier is ``1 + 2 * gain`` (slack clamps at -1).
#: Tuned on the open-loop family (5-seed mean): 8.0 minimises both
#: the SLO-miss rate and p99 latency against stock SmartBalance.
SLO_GAIN = 8.0


class _RowScaledBalance(SmartBalance):
    """Shared machinery: scale IPS rows by a per-thread weight."""

    def _row_weight(self, task_view) -> "float | None":
        """Weight for one thread, or ``None`` to leave it unscaled."""
        raise NotImplementedError

    def _optimize(
        self, view, observation, matrices, participants, core_types,
        allowed, t_s, t0,
    ):
        weights = {}
        for task_view in view.tasks:
            weight = self._row_weight(task_view)
            if weight is not None:
                weights[task_view.tid] = weight
        if weights:
            ips = matrices.ips.copy()
            for row, tid in enumerate(matrices.tids):
                weight = weights.get(tid)
                if weight is not None:
                    ips[row] *= weight
            matrices = dataclasses.replace(matrices, ips=ips)
        return super()._optimize(
            view, observation, matrices, participants, core_types,
            allowed, t_s, t0,
        )


class TpeqBalance(_RowScaledBalance):
    """Progress-deficit weighting for barrier-synchronised groups.

    Each epoch the maximum ``progress_frac`` over all scenario threads
    is the pacesetter; a thread's weight grows linearly with its
    deficit against it.  The deficit is recomputed every epoch, so a
    laggard that catches up sheds its boost — the closed loop that
    equalises progress rather than permanently pinning "slow" threads
    to big cores.
    """

    _pacesetter_frac: "float | None" = None

    def _sense_observation(self, view):
        fracs = [
            tv.progress_frac
            for tv in view.tasks
            if tv.progress_frac is not None
        ]
        self._pacesetter_frac = max(fracs) if fracs else None
        return super()._sense_observation(view)

    def _row_weight(self, task_view) -> "float | None":
        frac = task_view.progress_frac
        if frac is None or self._pacesetter_frac is None:
            return None
        deficit = max(self._pacesetter_frac - frac, 0.0)
        return 1.0 + TPEQ_GAIN * deficit


class SloAwareBalance(_RowScaledBalance):
    """Deadline-urgency weighting for open-loop request traffic.

    ``slo_slack_frac`` is 1 at arrival and 0 at the deadline; urgency
    ``1 - slack`` therefore ramps from 0 to 2 (slack clamps at -1 for
    overdue requests), boosting a request's row up to
    ``1 + 2 * SLO_GAIN`` as its deadline closes in.
    """

    def _row_weight(self, task_view) -> "float | None":
        slack = task_view.slo_slack_frac
        if slack is None:
            return None
        urgency = min(max(1.0 - slack, 0.0), 2.0)
        return 1.0 + SLO_GAIN * urgency
