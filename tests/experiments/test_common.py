"""Tests for the shared experiment infrastructure."""


from repro.experiments.common import FULL, QUICK, compare_balancers, run_balancer
from repro.hardware.platform import quad_hmp
from repro.kernel.balancers.base import NullBalancer
from repro.kernel.balancers.vanilla import VanillaBalancer
from repro.workload.synthetic import imb_threads


class TestScales:
    def test_full_covers_paper_settings(self):
        assert FULL.thread_counts == (2, 4, 8)
        assert len(FULL.imb_configs) == 9
        assert len(FULL.mixes) == 6

    def test_quick_is_subset_of_full(self):
        assert set(QUICK.imb_configs) <= set(FULL.imb_configs)
        assert set(QUICK.mixes) <= set(FULL.mixes)
        assert QUICK.n_epochs <= FULL.n_epochs


class TestRunners:
    def test_run_balancer_returns_result(self):
        result = run_balancer(
            quad_hmp(), imb_threads("MTMI", 4), NullBalancer(), n_epochs=3
        )
        assert result.balancer_name == "none"
        assert len(result.epochs) == 3

    def test_compare_balancers_keys_by_name(self):
        results = compare_balancers(
            quad_hmp(),
            lambda: imb_threads("MTMI", 4),
            (NullBalancer, VanillaBalancer),
            n_epochs=3,
        )
        assert set(results) == {"none", "vanilla"}

    def test_compare_balancers_fresh_workloads(self):
        """Each balancer must receive identical but independent thread
        objects — same results under the same deterministic policy."""
        results = compare_balancers(
            quad_hmp(),
            lambda: imb_threads("MTMI", 4),
            (NullBalancer, NullBalancer),
            n_epochs=3,
        )
        # Second NullBalancer run overwrites the first key; the single
        # entry proves name-keying, and determinism is covered by the
        # simulator tests.
        assert len(results) == 1
