"""The SmartBalance epoch loop: sense → predict → balance.

Orchestrates the three phases of paper Section 4 at each epoch
boundary and returns the thread migrations to apply.  Each phase is
wall-clock timed — those timings are the per-phase overhead the paper
reports in Fig. 7.

The class is kernel-agnostic: it consumes the observable
:class:`~repro.kernel.view.SystemView` and produces a placement, so it
can run against the full simulator (via
:class:`repro.kernel.balancers.smart.SmartBalanceKernelAdapter`) or be
driven directly with synthetic views in tests and benchmarks.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field, replace
from typing import Optional

import numpy as np

from repro.adaptation.controller import (
    AdaptationController,
    PairSample,
    PowerSample,
)
from repro.core.allocation import Allocation
from repro.core.annealing import SAResult, anneal
from repro.core.config import SmartBalanceConfig
from repro.core.estimation import feature_vector
from repro.core.objective import EnergyEfficiencyObjective
from repro.core.prediction import CharacterisationMatrices, MatrixBuilder, PredictorModel
from repro.core.sensing import ThreadObservation, observation_fault, sense
from repro.kernel.view import SystemView
from repro.obs import NULL_OBS, ObsContext
from repro.obs import events as obs_events


@dataclass(frozen=True)
class PhaseTimings:
    """Wall-clock seconds spent in each SmartBalance phase (Fig. 7)."""

    sense_s: float
    predict_s: float
    balance_s: float

    @property
    def total_s(self) -> float:
        return self.sense_s + self.predict_s + self.balance_s


@dataclass
class BalancerHealth:
    """Cumulative resilience counters of one SmartBalance instance.

    The defence layer's own telemetry: how many samples it refused,
    how often it leaned on stale rows, whether the predictor watchdog
    ever tripped, and how often the epoch time budget bit.
    """

    samples_rejected: int = 0
    rejects_by_reason: dict[str, int] = field(default_factory=dict)
    #: Rejected threads kept in the optimisation via their last good row.
    fallback_rows_used: int = 0
    #: Rejected threads with no history, excluded for the epoch.
    threads_dropped: int = 0
    #: Samples accepted despite failing the checks because the same
    #: thread had been rejected for ``rebaseline_epochs`` straight —
    #: a persistent anomaly is treated as the new operating regime.
    samples_rebaselined: int = 0
    watchdog_trips: int = 0
    #: Epochs decided by capability fallback instead of the predictor.
    watchdog_fallback_epochs: int = 0
    #: Epochs whose SA run was cut short by the time budget.
    truncated_epochs: int = 0
    #: Epochs where sensing/predicting alone exhausted the budget.
    budget_skipped_epochs: int = 0
    #: Epochs in which at least one core was masked out as offline.
    hotplug_masked_epochs: int = 0
    #: Adaptation-layer telemetry (zero while adaptation is disabled).
    drift_detections: int = 0
    model_updates: int = 0
    model_rollbacks: int = 0
    #: Watchdog trips resolved by an online re-fit instead of falling
    #: back to capability placement (repair before fallback).
    watchdog_repairs: int = 0

    def note_reject(self, reason: str) -> None:
        self.samples_rejected += 1
        self.rejects_by_reason[reason] = self.rejects_by_reason.get(reason, 0) + 1


@dataclass(frozen=True)
class BalanceDecision:
    """Outcome of one epoch's sense-predict-balance pass."""

    #: ``tid -> core_id`` changes to apply; ``None`` when the incumbent
    #: allocation is kept.
    placement: Optional[dict[int, int]]
    timings: PhaseTimings
    #: The annealer's run, when the balance phase executed.
    sa_result: Optional[SAResult] = None
    #: The characterisation matrices, when built.
    matrices: Optional[CharacterisationMatrices] = None
    #: Objective value of the incumbent allocation under this epoch's
    #: matrices (for convergence diagnostics).
    incumbent_value: float = 0.0
    #: True when the watchdog had this epoch decided by capability-
    #: aware load equalisation instead of the predictor+SA pipeline.
    fallback: bool = False
    #: Observations the sanity checks rejected this epoch.
    rejected_samples: int = 0


class SmartBalance:
    """Closed-loop sensing-driven load balancer (the paper's system)."""

    def __init__(
        self,
        predictor: PredictorModel,
        config: SmartBalanceConfig | None = None,
        obs: Optional[ObsContext] = None,
    ) -> None:
        self.predictor = predictor
        self.config = config or SmartBalanceConfig()
        #: Observability sink; the shared disabled context by default,
        #: so every emission below is one attribute check when off.
        self.obs = obs if obs is not None else NULL_OBS
        self._builder = MatrixBuilder(predictor)
        #: Per-tid smoothed characterisation rows (EWMA across epochs,
        #: in prediction space: aligned to platform cores, so smoothing
        #: survives migrations).  Doubles as the last-good-row store
        #: the fallback defence reads when a fresh sample is rejected.
        self._rows: dict[int, tuple] = {}
        #: Per-tid IPS row the balancer believed last epoch, for the
        #: predictor-divergence watchdog.
        self._last_prediction: dict[int, np.ndarray] = {}
        self._watchdog_strikes = 0
        self._watchdog_recoveries = 0
        self._watchdog_tripped = False
        #: Per-tid consecutive epochs with a rejected sample.
        self._reject_streak: dict[int, int] = {}
        self.health = BalancerHealth()
        #: Observability-only prediction provenance, maintained only
        #: while ``obs.enabled`` (the simulation never reads these):
        #: the core-type name each thread ran on when the last
        #: prediction was made, and the predicted power row — together
        #: they turn next epoch's measurement into a Table 4 sample.
        self._obs_src_type: dict[int, str] = {}
        self._obs_power_prediction: dict[int, np.ndarray] = {}
        #: Online model maintenance (None unless opted in): the
        #: controller owns the model registry; the balancer feeds it
        #: the epoch's observations and swaps its own predictor when a
        #: re-fit commits or rolls back.
        self._adaptation: Optional[AdaptationController] = None
        if self.config.adaptation.enabled:
            self._adaptation = AdaptationController(
                predictor, self.config.adaptation
            )
        #: Per-tid ``(core-type name, feature vector)`` of the previous
        #: epoch's measurement, kept only while adaptation is on: a
        #: thread measured on type A one epoch and on type B the next is
        #: one supervised sample for the A→B regression.
        self._adapt_prev: dict[int, tuple[str, np.ndarray]] = {}

    @property
    def adaptation(self) -> Optional[AdaptationController]:
        """The online-maintenance controller (None when disabled)."""
        return self._adaptation

    def _swap_model(self, model: PredictorModel) -> None:
        """Activate a different predictor (commit or rollback)."""
        self.predictor = model
        self._builder = MatrixBuilder(model)

    def _opp_bin_for(self, obs: ThreadObservation) -> "int | None":
        """OPP level of the observed core, for (pair, bin)-keyed drift
        detection.  The stock balancer never scales OPPs, so there is
        nothing to bin by; the governor subclass overrides this."""
        return None

    def _adaptation_step(self, healthy: list[ThreadObservation], view, t_s: float) -> None:
        """Feed this epoch's observations to the adaptation controller
        and adopt whatever model it decides is active afterwards.

        Runs in the predict phase *before* the characterisation
        matrices are built, so a committed re-fit (or rollback) takes
        effect in the same epoch that triggered it.
        """
        ctrl = self._adaptation
        ipc_samples: list[PairSample] = []
        power_samples: list[PowerSample] = []
        for obs in healthy:
            dst = obs.core_type.name
            prev = self._adapt_prev.get(obs.tid)
            if prev is not None and prev[0] != dst and obs.ipc_measured > 0:
                ipc_samples.append(
                    PairSample(
                        src=prev[0],
                        dst=dst,
                        features=prev[1],
                        ipc=obs.ipc_measured,
                        opp_bin=self._opp_bin_for(obs),
                    )
                )
            if obs.ipc_measured > 0 and obs.power_measured > 0:
                power_samples.append(
                    PowerSample(
                        type_name=dst,
                        ipc=obs.ipc_measured,
                        power_w=obs.power_measured,
                    )
                )
        report = ctrl.observe_epoch(
            ipc_samples,
            power_samples,
            epoch=view.epoch_index,
            t_s=t_s,
            obs=self.obs,
        )
        if report.model_changed:
            self._swap_model(ctrl.model)
        # Mirror the controller's totals into the health counters the
        # simulator folds into ResilienceStats.
        self.health.drift_detections = ctrl.drift_detections
        self.health.model_updates = ctrl.model_updates
        self.health.model_rollbacks = ctrl.model_rollbacks
        # Remember this epoch's measurement context for next epoch's
        # cross-type samples; forget threads that no longer exist.
        for obs in healthy:
            self._adapt_prev[obs.tid] = (obs.core_type.name, feature_vector(obs))
        live = {task.tid for task in view.tasks}
        for tid in list(self._adapt_prev):
            if tid not in live:
                del self._adapt_prev[tid]

    def _attempt_watchdog_repair(self, view, t_s: float) -> bool:
        """Watchdog handoff: ask the adaptation layer for a confident
        re-fit before surrendering the epoch to capability fallback."""
        ctrl = self._adaptation
        if ctrl is None:
            return False
        if not ctrl.attempt_repair(view.epoch_index, t_s, obs=self.obs):
            return False
        self._swap_model(ctrl.model)
        self._watchdog_tripped = False
        self._watchdog_strikes = 0
        self._watchdog_recoveries = 0
        self.health.watchdog_repairs += 1
        self.health.model_updates = ctrl.model_updates
        if self.obs.enabled:
            self.obs.tracer.emit(
                obs_events.DEGRADATION,
                t_s,
                state="watchdog_repaired",
                cause="model_refit",
            )
            self.obs.metrics.inc("balancer.watchdog_repairs")
        return True

    def _blend(
        self,
        matrices: CharacterisationMatrices,
        keep: "frozenset[int] | set[int]" = frozenset(),
    ) -> CharacterisationMatrices:
        """EWMA-smooth per-thread matrix rows across epochs.

        Workload phases can flip faster than a migration pays off;
        chasing each epoch's snapshot produces migration storms with no
        realised gain.  Blending each thread's predicted (IPS, power,
        demand) row over the recent epochs makes the balancer target
        the thread's *time-averaged* behaviour.  Rows live in
        prediction space — indexed by platform core, not by where the
        thread happened to run — so smoothing survives migrations.

        ``keep`` lists tids that are alive but absent from this epoch's
        matrices (their sample was rejected); their stored rows must
        survive the garbage collection so the last-good-row fallback
        can read them.
        """
        beta = self.config.smoothing
        if beta >= 1.0:
            return matrices
        ips = matrices.ips.copy()
        power = matrices.power.copy()
        util = matrices.utilization.copy()
        # Blend all threads with history in one vectorized pass.
        prev = [self._rows.get(tid) for tid in matrices.tids]
        known = [i for i, row in enumerate(prev) if row is not None]
        if known:
            prev_ips = np.array([prev[i][0] for i in known])
            prev_power = np.array([prev[i][1] for i in known])
            prev_util = np.array([prev[i][2] for i in known])
            ips[known] = (1.0 - beta) * prev_ips + beta * ips[known]
            power[known] = (1.0 - beta) * prev_power + beta * power[known]
            util[known] = (1.0 - beta) * prev_util + beta * util[known]
        for i, tid in enumerate(matrices.tids):
            self._rows[tid] = (ips[i].copy(), power[i].copy(), util[i].copy())
        live = set(matrices.tids) | set(keep)
        for tid in list(self._rows):
            if tid not in live:
                del self._rows[tid]
        return replace(matrices, ips=ips, power=power, utilization=util)

    def _append_fallback_rows(
        self,
        matrices: CharacterisationMatrices,
        fallback: list[ThreadObservation],
    ) -> CharacterisationMatrices:
        """Extend the matrices with stored last-good rows for threads
        whose fresh sample was rejected (all of them must be in
        ``self._rows``)."""
        n = matrices.ips.shape[1]
        ips_rows = []
        power_rows = []
        util_rows = []
        for obs in fallback:
            row_ips, row_power, row_util = self._rows[obs.tid]
            ips_rows.append(row_ips)
            power_rows.append(row_power)
            util_rows.append(row_util)
        extra = len(fallback)
        return replace(
            matrices,
            tids=matrices.tids + tuple(obs.tid for obs in fallback),
            ips=np.vstack([matrices.ips, np.array(ips_rows)]),
            power=np.vstack([matrices.power, np.array(power_rows)]),
            utilization=np.vstack([matrices.utilization, np.array(util_rows)]),
            measured_mask=np.vstack(
                [matrices.measured_mask, np.zeros((extra, n), dtype=bool)]
            ),
        )

    def _watchdog_update(
        self, healthy: list[ThreadObservation], t_s: float = 0.0
    ) -> None:
        """Advance the predictor-divergence watchdog one epoch.

        The check the paper cannot fail but a deployment can: compare
        each thread's measured IPS against what the balancer *predicted*
        for the core the thread actually ran on.  Median relative error
        across threads is robust to one bad thread; a predictor that is
        systematically wrong (model drift, corrupt Θ, throttled clocks
        it cannot see) pushes the median out of band epoch after epoch.
        """
        errors = []
        for obs in healthy:
            row = self._last_prediction.get(obs.tid)
            if row is None or not 0 <= obs.core_id < len(row):
                continue
            predicted = row[obs.core_id]
            if predicted > 0:
                errors.append(abs(obs.ips_measured - predicted) / predicted)
        if not errors:
            return
        out_of_band = statistics.median(errors) > self.config.resilience.watchdog_tolerance
        if self._watchdog_tripped:
            if out_of_band:
                self._watchdog_recoveries = 0
            else:
                self._watchdog_recoveries += 1
                if self._watchdog_recoveries >= self.config.resilience.watchdog_recovery_epochs:
                    self._watchdog_tripped = False
                    self._watchdog_recoveries = 0
                    if self.obs.enabled:
                        self.obs.tracer.emit(
                            obs_events.DEGRADATION,
                            t_s,
                            state="watchdog_recovered",
                            cause="prediction_error_back_in_band",
                        )
        else:
            if out_of_band:
                self._watchdog_strikes += 1
                if self._watchdog_strikes >= self.config.resilience.watchdog_trip_epochs:
                    self._watchdog_tripped = True
                    self._watchdog_strikes = 0
                    self.health.watchdog_trips += 1
                    if self.obs.enabled:
                        self.obs.tracer.emit(
                            obs_events.DEGRADATION,
                            t_s,
                            state="watchdog_tripped",
                            cause="median_prediction_error_out_of_band",
                        )
                        self.obs.metrics.inc("balancer.watchdog_trips")
            else:
                self._watchdog_strikes = 0

    def _capability_placement(
        self,
        participants: list[ThreadObservation],
        view: SystemView,
        allowed: Optional[np.ndarray],
    ) -> dict[int, int]:
        """Predictor-free fallback: capability-aware load equalisation.

        Greedy worst-fit by utilisation onto the core with the lowest
        resulting load per unit capability (``freq × issue width``) —
        the heterogeneity-aware version of what CFS would do, needing
        nothing from sensors or models beyond kernel bookkeeping.
        """
        cores = list(view.platform)
        capability = [
            max(c.core_type.freq_mhz * c.core_type.issue_width, 1e-9) for c in cores
        ]
        load = [0.0] * len(cores)
        order = sorted(
            range(len(participants)),
            key=lambda i: participants[i].utilization,
            reverse=True,
        )
        placement: dict[int, int] = {}
        for i in order:
            obs = participants[i]
            if allowed is not None:
                candidates = [j for j in range(len(cores)) if allowed[i, j]]
            else:
                candidates = list(range(len(cores)))
            if not candidates:
                candidates = [obs.core_id]
            best = min(
                candidates,
                key=lambda j: (load[j] + obs.utilization) / capability[j],
            )
            load[best] += obs.utilization
            if best != obs.core_id:
                placement[obs.tid] = best
        return placement

    def _emit_prediction_checks(self, healthy: list[ThreadObservation], t_s: float) -> None:
        """Score last epoch's per-thread predictions against this
        epoch's realised measurements (the Table 4 accuracy data).

        Reads the *previous* ``_last_prediction``/``_obs_power_prediction``
        rows, so it must run before this epoch overwrites them.  Only
        called while ``obs.enabled``; touches no simulation state.
        """
        oc = self.obs
        for obs in healthy:
            row = self._last_prediction.get(obs.tid)
            if row is None or not 0 <= obs.core_id < len(row):
                continue
            predicted = float(row[obs.core_id])
            measured = obs.ips_measured
            src_type = self._obs_src_type.get(obs.tid)
            if predicted <= 0 or measured <= 0 or src_type is None:
                continue
            dst_type = obs.core_type.name
            ipc_error = abs(measured - predicted) / measured * 100.0
            payload: dict = {
                "tid": obs.tid,
                "src_type": src_type,
                "dst_type": dst_type,
                "core": obs.core_id,
                "predicted_ips": predicted,
                "measured_ips": measured,
                "ipc_abs_pct_error": ipc_error,
            }
            power_row = self._obs_power_prediction.get(obs.tid)
            if power_row is not None and 0 <= obs.core_id < len(power_row):
                predicted_power = float(power_row[obs.core_id])
                measured_power = obs.power_measured
                if predicted_power > 0 and measured_power > 0:
                    payload["predicted_power_w"] = predicted_power
                    payload["measured_power_w"] = measured_power
                    payload["power_abs_pct_error"] = (
                        abs(measured_power - predicted_power) / measured_power * 100.0
                    )
            oc.tracer.emit(obs_events.PREDICTION_CHECK, t_s, **payload)
            pair = f"{src_type}->{dst_type}"
            oc.metrics.observe(f"prediction.ipc.abs_pct_error[{pair}]", ipc_error)
            if "power_abs_pct_error" in payload:
                oc.metrics.observe(
                    f"prediction.power.abs_pct_error[{pair}]",
                    payload["power_abs_pct_error"],
                )

    def _finish(self, view: SystemView, decision: BalanceDecision) -> BalanceDecision:
        """Emit the epoch's ``decision`` event and pass it through."""
        oc = self.obs
        if oc.enabled:
            oc.tracer.emit(
                obs_events.DECISION,
                view.time_s,
                epoch=view.epoch_index,
                migrations=len(decision.placement) if decision.placement else 0,
                fallback=decision.fallback,
                rejected=decision.rejected_samples,
                incumbent_value=decision.incumbent_value,
                best_value=(
                    decision.sa_result.best_value if decision.sa_result else None
                ),
            )
            oc.metrics.inc("balancer.epochs")
            if decision.placement:
                oc.metrics.inc(
                    "balancer.proposed_migrations", len(decision.placement)
                )
        return decision

    def _sense_observation(self, view: SystemView):
        """Sense-phase hook: the raw window observation the sanity
        checks and predictor consume.

        Subclasses may override to post-process the observation — the
        governor tier normalises measurements taken at a scaled
        operating point back into the nominal-frequency frame here,
        *after* the kernel-side sensing but before any model sees the
        numbers.
        """
        return sense(
            view, include_kernel_threads=self.config.include_kernel_threads
        )

    def _optimize(
        self,
        view: SystemView,
        observation,
        matrices: CharacterisationMatrices,
        participants: list[ThreadObservation],
        core_types: list,
        allowed: "Optional[np.ndarray]",
        t_s: float,
        t0: float,
    ) -> "tuple[Optional[dict[int, int]], Optional[SAResult], float]":
        """Balance-phase hook: pick the next placement given this
        epoch's characterisation matrices.

        The base implementation is the paper's pipeline — Eq. 10/11
        objective + Algorithm 1 annealing + the adoption gate — over a
        fixed operating point.  The governor tier overrides this to
        search (allocation, OPP vector) jointly.  Returns
        ``(placement, sa_result, incumbent_value)``; ``placement`` is
        ``None`` when the incumbent is kept.
        """
        oc = self.obs
        placement: Optional[dict[int, int]] = None
        sa_result: Optional[SAResult] = None
        weights = self.config.core_weights
        if self.config.thermal_aware and observation.core_temperatures_c:
            from repro.hardware.thermal import thermal_weights

            weights = thermal_weights(
                list(observation.core_temperatures_c),
                knee_c=self.config.thermal_knee_c,
                zero_c=self.config.thermal_zero_c,
            )
        objective = EnergyEfficiencyObjective(
            ips=matrices.ips,
            power=matrices.power,
            utilization=matrices.utilization,
            idle_power=list(observation.idle_power_w),
            sleep_power=list(observation.sleep_power_w),
            weights=weights,
            mode=self.config.objective_mode,
            throughput_exponent=self.config.throughput_exponent,
            allowed=allowed,
        )
        incumbent = Allocation.from_mapping(
            [obs.core_id for obs in participants], n_cores=len(core_types)
        )
        incumbent_value = objective.evaluate(incumbent)

        # Epoch time budget: whatever sensing and predicting
        # consumed is gone; the SA balance phase gets only the
        # remainder and truncates cleanly when it runs out.
        sa_config = self.config.sa
        skipped = False
        if self.config.epoch_time_budget_s is not None:
            remaining = self.config.epoch_time_budget_s - (
                time.perf_counter() - t0
            )
            if remaining <= 0:
                self.health.budget_skipped_epochs += 1
                if oc.enabled:
                    oc.tracer.emit(
                        obs_events.MITIGATION,
                        t_s,
                        kind="budget_skip",
                        cause="epoch_budget_exhausted",
                    )
                    oc.metrics.inc("balancer.epoch_budget_overruns")
                skipped = True
            else:
                if sa_config.time_budget_s is not None:
                    remaining = min(remaining, sa_config.time_budget_s)
                sa_config = replace(sa_config, time_budget_s=remaining)
        if not skipped:
            result = anneal(
                objective, incumbent, sa_config, keep_trace=oc.enabled
            )
            sa_result = result
            if result.truncated:
                self.health.truncated_epochs += 1
                if oc.enabled:
                    oc.tracer.emit(
                        obs_events.MITIGATION,
                        t_s,
                        kind="sa_truncated",
                        cause="sa_time_budget",
                    )
                    oc.metrics.inc("balancer.truncated_epochs")
            if oc.enabled:
                oc.tracer.emit(
                    obs_events.ANNEAL,
                    t_s,
                    epoch=view.epoch_index,
                    iterations=result.iterations,
                    accepted=result.accepted_moves,
                    uphill=result.uphill_accepts,
                    truncated=result.truncated,
                    initial_value=result.initial_value,
                    best_value=result.best_value,
                    improvement_pct=result.improvement * 100.0,
                    samples=(
                        result.trace.samples if result.trace else None
                    ),
                )
                oc.metrics.inc("annealer.runs")
                oc.metrics.inc("annealer.iterations", result.iterations)
                oc.metrics.inc(
                    "annealer.accepted_moves", result.accepted_moves
                )
            changes = incumbent.diff(result.best_allocation)
            # Adoption gate: the predicted gain must clear both
            # the churn threshold and the warm-up cost of the
            # migrations it needs.
            required = (
                1.0
                + self.config.min_improvement
                + self.config.migration_penalty
                * len(changes)
                / max(len(participants), 1)
            )
            if changes and result.best_value > incumbent_value * required:
                placement = {
                    matrices.tids[thread]: core
                    for thread, core in changes.items()
                }
        return placement, sa_result, incumbent_value

    def decide(self, view: SystemView) -> BalanceDecision:
        """Run one epoch's sense → predict → balance pass."""
        oc = self.obs
        t_s = view.time_s
        t0 = time.perf_counter()
        res = self.config.resilience
        with oc.span("sense") as sense_span:
            observation = self._sense_observation(view)
            measured = list(observation.measured_threads)

            # Sanity-check the samples before they touch the predictor:
            # a corrupt observation poisons not just this epoch but
            # (through the EWMA) several following ones.
            healthy = measured
            rejected: list[ThreadObservation] = []
            reject_reasons: dict[int, str] = {}
            rebaselined: list[ThreadObservation] = []
            if res.sanity_checks and measured:
                healthy = []
                for obs in measured:
                    reason = observation_fault(
                        obs,
                        max_ipc=res.max_ipc,
                        min_power_w=res.min_power_w,
                        max_power_w=res.max_power_w,
                        clock_identity_tolerance=res.clock_identity_tolerance,
                    )
                    if reason is None:
                        healthy.append(obs)
                        self._reject_streak.pop(obs.tid, None)
                        continue
                    streak = self._reject_streak.get(obs.tid, 0) + 1
                    if streak >= res.rebaseline_epochs:
                        # The anomaly has persisted long enough that it
                        # is the new normal (e.g. a silently throttled
                        # core): accept the sample and re-baseline
                        # rather than optimise against a world that no
                        # longer exists.
                        self._reject_streak.pop(obs.tid, None)
                        self.health.samples_rebaselined += 1
                        rebaselined.append(obs)
                        healthy.append(obs)
                    else:
                        self._reject_streak[obs.tid] = streak
                        rejected.append(obs)
                        reject_reasons[obs.tid] = reason
                        self.health.note_reject(reason)
            # Last-good-row fallback: a rejected thread with history
            # keeps participating through its stored EWMA row; one with
            # no history sits this epoch out.
            fallback_obs: list[ThreadObservation] = []
            dropped: list[ThreadObservation] = []
            if res.last_good_fallback:
                for obs in rejected:
                    if obs.tid in self._rows:
                        fallback_obs.append(obs)
                        self.health.fallback_rows_used += 1
                    else:
                        dropped.append(obs)
                        self.health.threads_dropped += 1
            else:
                dropped = list(rejected)
                self.health.threads_dropped += len(rejected)

        if oc.enabled:
            oc.tracer.emit(
                obs_events.SENSE,
                t_s,
                epoch=view.epoch_index,
                window_s=view.window_s,
                threads=len(view.tasks),
                measured=len(measured),
                healthy=len(healthy),
                rejected=len(rejected),
                fallback_rows=len(fallback_obs),
            )
            for obs in rebaselined:
                oc.tracer.emit(
                    obs_events.MITIGATION,
                    t_s,
                    kind="rebaseline",
                    cause="persistent_anomaly",
                    tid=obs.tid,
                )
                oc.metrics.inc("balancer.samples_rebaselined")
            for obs in rejected:
                reason = reject_reasons.get(obs.tid, "unknown")
                oc.tracer.emit(
                    obs_events.MITIGATION,
                    t_s,
                    kind="sample_rejected",
                    cause=reason,
                    tid=obs.tid,
                )
                oc.metrics.inc(f"balancer.samples_rejected[{reason}]")
            for obs in fallback_obs:
                oc.tracer.emit(
                    obs_events.MITIGATION,
                    t_s,
                    kind="fallback_row",
                    cause="sample_rejected",
                    tid=obs.tid,
                )
                oc.metrics.inc("balancer.fallback_rows_used")
            for obs in dropped:
                oc.tracer.emit(
                    obs_events.MITIGATION,
                    t_s,
                    kind="thread_dropped",
                    cause="sample_rejected_no_history",
                    tid=obs.tid,
                )
                oc.metrics.inc("balancer.threads_dropped")

        if not healthy:
            # Nothing trustworthy sensed this epoch (first epoch, or
            # every sensor glitched at once): freeze the placement.
            timings = PhaseTimings(
                sense_s=sense_span.elapsed_s, predict_s=0.0, balance_s=0.0
            )
            return self._finish(
                view,
                BalanceDecision(
                    placement=None, timings=timings, rejected_samples=len(rejected)
                ),
            )

        with oc.span("predict") as predict_span:
            if oc.enabled:
                # Before this epoch's rows overwrite the prediction
                # state, score last epoch's predictions (Table 4 data).
                self._emit_prediction_checks(healthy, t_s)
            if res.watchdog_enabled:
                self._watchdog_update(healthy, t_s=t_s)
            if self._adaptation is not None:
                # Online maintenance: fold this epoch's observations in;
                # a drift-triggered re-fit (or a probation rollback)
                # swaps the predictor before the matrices are built.  A
                # tripped watchdog asks for repair first — capability
                # fallback below is the last resort.
                self._adaptation_step(healthy, view, t_s)
                if res.watchdog_enabled and self._watchdog_tripped:
                    self._attempt_watchdog_repair(view, t_s)
            core_types = [core.core_type for core in view.platform]
            matrices = self._blend(
                self._builder.build(healthy, core_types),
                keep={obs.tid for obs in fallback_obs},
            )
            if fallback_obs:
                matrices = self._append_fallback_rows(matrices, fallback_obs)
            participants = healthy + fallback_obs

            self._last_prediction = {
                tid: matrices.ips[i].copy() for i, tid in enumerate(matrices.tids)
            }
            if oc.enabled:
                self._obs_power_prediction = {
                    tid: matrices.power[i].copy()
                    for i, tid in enumerate(matrices.tids)
                }
                for obs in participants:
                    self._obs_src_type[obs.tid] = obs.core_type.name

        with oc.span("balance") as balance_span:
            # Affinity constraints (paper Section 5.1): build the
            # allowed mask when any participating thread carries a
            # cpuset.
            allowed = None
            if any(obs.allowed_cores is not None for obs in participants):
                allowed = np.ones((len(participants), len(core_types)), dtype=bool)
                for i, obs in enumerate(participants):
                    if obs.allowed_cores is not None:
                        allowed[i, :] = False
                        for core_id in obs.allowed_cores:
                            if 0 <= core_id < len(core_types):
                                allowed[i, core_id] = True

            # Hotplug awareness: an offline core must never be a
            # placement target, whatever the cpusets say.
            if res.hotplug_aware:
                online = np.ones(len(core_types), dtype=bool)
                for core in view.cores:
                    if not core.online and 0 <= core.core_id < len(core_types):
                        online[core.core_id] = False
                if not online.all() and online.any():
                    self.health.hotplug_masked_epochs += 1
                    if oc.enabled:
                        oc.tracer.emit(
                            obs_events.MITIGATION,
                            t_s,
                            kind="hotplug_mask",
                            cause="core_offline",
                        )
                        oc.metrics.inc("balancer.hotplug_masked_epochs")
                    if allowed is None:
                        allowed = np.ones(
                            (len(participants), len(core_types)), dtype=bool
                        )
                    allowed &= online[None, :]
                    # A cpuset confined entirely to offline cores:
                    # staying schedulable beats honouring the cpuset.
                    stranded = ~allowed.any(axis=1)
                    if stranded.any():
                        allowed[stranded] = online

            placement: Optional[dict[int, int]] = None
            sa_result: Optional[SAResult] = None
            incumbent_value = 0.0
            fallback_mode = False
            if res.watchdog_enabled and self._watchdog_tripped:
                # The predictor is out of band: its matrices are
                # exactly what we must not optimise against.  Place by
                # capability-aware load equalisation until it recovers.
                self.health.watchdog_fallback_epochs += 1
                if oc.enabled:
                    oc.tracer.emit(
                        obs_events.MITIGATION,
                        t_s,
                        kind="watchdog_fallback",
                        cause="predictor_divergence",
                    )
                    oc.metrics.inc("balancer.watchdog_fallback_epochs")
                placement = self._capability_placement(participants, view, allowed)
                fallback_mode = True
            else:
                placement, sa_result, incumbent_value = self._optimize(
                    view,
                    observation,
                    matrices,
                    participants,
                    core_types,
                    allowed,
                    t_s,
                    t0,
                )

        timings = PhaseTimings(
            sense_s=sense_span.elapsed_s,
            predict_s=predict_span.elapsed_s,
            balance_s=balance_span.elapsed_s,
        )
        return self._finish(
            view,
            BalanceDecision(
                placement=placement or None,
                timings=timings,
                sa_result=sa_result,
                matrices=matrices,
                incumbent_value=incumbent_value,
                fallback=fallback_mode,
                rejected_samples=len(rejected),
            ),
        )
