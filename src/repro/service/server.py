"""The asyncio HTTP front end of the job service.

A deliberately small HTTP/1.1 implementation over
``asyncio.start_server`` — request line, headers, ``Content-Length``
body, one request per connection — because the service's API surface
doesn't need a framework and the repo takes no new dependencies.

Routes::

    GET  /healthz                  liveness + lifecycle state
    GET  /metricz                  MetricsRegistry (text; ?format=json)
    GET  /v1/catalogue             resolvable names (= repro list --json)
    POST /v1/jobs                  submit one spec or a sweep of specs
    GET  /v1/jobs                  list known jobs (no result payloads)
    GET  /v1/jobs/{id}             job status (+ result when done)
    GET  /v1/jobs/{id}/events      NDJSON stream of the job's obs events
    POST /v1/jobs/{id}/cancel      cancel (DELETE /v1/jobs/{id} works too)

Backpressure contract: a full queue answers ``429`` with a
``Retry-After`` header; a draining service answers ``503``.  Both are
JSON bodies, so clients never need to scrape HTML error pages.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional
from urllib.parse import parse_qs, urlsplit

from repro.obs.log import get_logger
from repro.obs.metrics import MetricsRegistry
from repro.runner.cache import ResultCache
from repro.runner.engine import DEFAULT_RETRIES
from repro.runner.env import resolve_queue_depth, resolve_service_port
from repro.runner.factories import catalogue
from repro.service.api import ApiError, specs_from_request
from repro.service.jobqueue import QueueFull
from repro.service.scheduler import Scheduler

_log = get_logger("service.server")

#: Submission bodies above this size are refused (413).
MAX_BODY_BYTES = 8 * 1024 * 1024
#: Seconds clients are told to wait after a 429.
RETRY_AFTER_S = 1

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


def _response(status: int, body: bytes, content_type: str,
              extra_headers: "tuple[tuple[str, str], ...]" = ()) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


def _json_response(status: int, payload: object,
                   extra_headers: "tuple[tuple[str, str], ...]" = ()) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return _response(status, body, "application/json", extra_headers)


class ServiceServer:
    """One service instance: scheduler + HTTP listener + lifecycle."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        jobs: int = 1,
        queue_depth: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        retries: int = DEFAULT_RETRIES,
        trace_dir: Optional[str] = None,
        linger_s: float = 1.0,
    ) -> None:
        self.host = host
        self.port = resolve_service_port(port)
        self.jobs = jobs
        self.queue_depth = resolve_queue_depth(queue_depth)
        self.cache = cache
        self.retries = retries
        self.trace_dir = trace_dir
        #: How long the listener keeps answering status reads after the
        #: drain finishes, so clients polling for a result that
        #: completed during the drain can still collect it.
        self.linger_s = linger_s
        self.metrics = MetricsRegistry()
        self.state = "starting"
        self.scheduler: Optional[Scheduler] = None
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener (resolves ``self.port`` when it was 0)."""
        self.scheduler = Scheduler(
            jobs=self.jobs,
            queue_depth=self.queue_depth,
            cache=self.cache,
            retries=self.retries,
            metrics=self.metrics,
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.state = "running"
        _log.info(
            "serving on http://%s:%d (%d worker slot(s), queue depth %d, "
            "cache %s)",
            self.host, self.port, self.jobs, self.queue_depth,
            self.cache.root if self.cache is not None else "off",
        )

    async def drain_and_stop(self, timeout_s: Optional[float] = None) -> bool:
        """Graceful shutdown: refuse new jobs, finish in-flight ones,
        flush traces, close the listener.  Returns False when the
        drain timed out and running jobs had to be killed."""
        if self.state == "stopped":
            return True
        self.state = "draining"
        _log.info("draining: %d queued, %d running",
                  len(self.scheduler.queue), len(self.scheduler._running))
        clean = await self.scheduler.drain(timeout_s)
        if not clean:
            _log.warning("drain timed out; terminating remaining jobs")
            self.scheduler.close()
        self._flush_traces()
        if self.linger_s > 0:
            await asyncio.sleep(self.linger_s)
        self._server.close()
        await self._server.wait_closed()
        self.state = "stopped"
        _log.info("service stopped (drain %s)", "clean" if clean else "forced")
        return clean

    def _flush_traces(self) -> None:
        """Write every completed execution's event stream to
        ``trace_dir`` (spec-keyed, like ``run_specs(trace_dir=...)``)."""
        if self.trace_dir is None or self.scheduler is None:
            return
        import os

        from repro.obs import write_jsonl

        os.makedirs(self.trace_dir, exist_ok=True)
        flushed = 0
        seen: "set[str]" = set()
        for job in self.scheduler.jobs():
            execution = job.execution
            if execution.spec_key in seen or not execution.events:
                continue
            seen.add(execution.spec_key)
            write_jsonl(
                execution.events,
                os.path.join(self.trace_dir, f"{execution.spec_key}.jsonl"),
            )
            flushed += 1
        if flushed:
            _log.info("flushed %d event trace(s) to %s", flushed, self.trace_dir)

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            await self._handle_request(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception:  # noqa: BLE001 — a handler bug must not kill the loop
            _log.exception("unhandled error in request handler")
            try:
                writer.write(_json_response(500, {"error": "internal error"}))
            except ConnectionError:
                pass
        finally:
            try:
                await writer.drain()
                writer.close()
            except (ConnectionError, RuntimeError):
                pass

    async def _handle_request(self, reader, writer) -> None:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return
        parts = request_line.split()
        if len(parts) != 3:
            writer.write(_json_response(400, {"error": "malformed request line"}))
            return
        method, target, _version = parts
        headers = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()

        body = b""
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            writer.write(_json_response(413, {"error": "request body too large"}))
            return
        if length:
            body = await reader.readexactly(length)

        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = {k: v[-1] for k, v in parse_qs(url.query).items()}
        self.metrics.inc(f"service.http.requests[{method} {path.split('/')[1] or '/'}]")
        await self._route(method, path, query, body, writer)

    async def _route(self, method: str, path: str, query: dict,
                     body: bytes, writer) -> None:
        if path == "/healthz" and method == "GET":
            writer.write(self._healthz())
            return
        if path == "/metricz" and method == "GET":
            writer.write(self._metricz(query))
            return
        if path == "/v1/catalogue" and method == "GET":
            writer.write(_json_response(200, catalogue()))
            return
        if path == "/v1/jobs":
            if method == "POST":
                writer.write(self._submit(body))
                return
            if method == "GET":
                jobs = [j.to_dict(with_result=False)
                        for j in self.scheduler.jobs()]
                jobs.sort(key=lambda j: j["id"])
                writer.write(_json_response(200, {"jobs": jobs}))
                return
            writer.write(_json_response(405, {"error": f"{method} not allowed"}))
            return
        if path.startswith("/v1/jobs/"):
            await self._route_job(method, path, writer)
            return
        writer.write(_json_response(404, {"error": f"no route {path}"}))

    async def _route_job(self, method: str, path: str, writer) -> None:
        segments = path.split("/")[3:]  # after /v1/jobs/
        job = self.scheduler.get(segments[0]) if segments else None
        if job is None:
            writer.write(_json_response(
                404, {"error": f"unknown job {segments[0] if segments else ''!r}"}
            ))
            return
        if len(segments) == 1:
            if method == "GET":
                writer.write(_json_response(200, job.to_dict()))
            elif method == "DELETE":
                self.scheduler.cancel(job.id)
                writer.write(_json_response(200, job.to_dict(with_result=False)))
            else:
                writer.write(_json_response(405, {"error": f"{method} not allowed"}))
            return
        if len(segments) == 2 and segments[1] == "cancel" and method == "POST":
            self.scheduler.cancel(job.id)
            writer.write(_json_response(200, job.to_dict(with_result=False)))
            return
        if len(segments) == 2 and segments[1] == "events" and method == "GET":
            await self._stream_events(job, writer)
            return
        writer.write(_json_response(404, {"error": f"no route {path}"}))

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def _healthz(self) -> bytes:
        scheduler = self.scheduler
        return _json_response(200, {
            "status": "ok" if self.state == "running" else self.state,
            "state": self.state,
            "queued": len(scheduler.queue) if scheduler else 0,
            "running": len(scheduler._running) if scheduler else 0,
            "queue_depth": self.queue_depth,
            "worker_slots": self.jobs,
            "cache": str(self.cache.root) if self.cache is not None else None,
        })

    def _metricz(self, query: dict) -> bytes:
        if query.get("format") == "json":
            return _json_response(200, self.metrics.snapshot())
        text = self.metrics.render_text() + "\n"
        return _response(200, text.encode("utf-8"), "text/plain; charset=utf-8")

    def _submit(self, body: bytes) -> bytes:
        if self.state != "running" or self.scheduler.draining:
            state = "draining" if self.scheduler.draining else self.state
            return _json_response(
                503, {"error": f"service is {state}; not admitting jobs"}
            )
        try:
            request = json.loads(body.decode("utf-8")) if body else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return _json_response(400, {"error": f"invalid JSON body: {exc}"})
        try:
            specs, options = specs_from_request(request)
        except ApiError as exc:
            return _json_response(exc.status, exc.to_dict())
        accepted = []
        try:
            for spec in specs:
                accepted.append(self.scheduler.submit(
                    spec,
                    priority=options["priority"],
                    timeout_s=options["timeout_s"],
                ))
        except QueueFull as exc:
            # Partial sweeps roll forward: already-accepted jobs stay
            # admitted and are reported alongside the refusal.
            return _json_response(
                429,
                {
                    "error": str(exc),
                    "accepted": [j.to_dict(with_result=False) for j in accepted],
                },
                extra_headers=(("Retry-After", str(RETRY_AFTER_S)),),
            )
        return _json_response(
            202, {"jobs": [j.to_dict(with_result=False) for j in accepted]}
        )

    async def _stream_events(self, job, writer) -> None:
        """NDJSON: replayed buffered events, then live ones, until the
        job reaches a terminal state."""
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/x-ndjson\r\n"
            "Connection: close\r\n\r\n"
        ).encode("ascii")
        writer.write(head)
        queue = self.scheduler.subscribe(job)
        try:
            while True:
                event = await queue.get()
                if event is None:
                    break
                writer.write(
                    (json.dumps(event, sort_keys=True) + "\n").encode("utf-8")
                )
                await writer.drain()
        except (ConnectionError, RuntimeError):
            pass
        finally:
            self.scheduler.unsubscribe(job, queue)
