"""Fig. 8 — SA iteration budget vs solution quality, and the
optimizer's parameter values.

(a) *distance to optimal*: run Algorithm 1 on synthetic allocation
problems whose optimum is known (small enough for exhaustive search)
under increasing iteration caps, reporting the mean relative gap to
the optimum — the paper's quality/overhead trade-off curve, plus the
iteration cap chosen for each scalability scenario;

(b) the values of the remaining optimizer parameters.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.analysis.reporting import ExperimentResult, Finding
from repro.analysis.stats import mean
from repro.core.allocation import Allocation
from repro.core.annealing import SAConfig, anneal, default_iteration_cap
from repro.core.objective import EnergyEfficiencyObjective
from repro.experiments.fig7 import SCALING_SCENARIOS
from repro.hardware import microarch
from repro.hardware import power as power_model
from repro.hardware.features import TABLE2_TYPES
from repro.obs import user_output
from repro.workload.demand import demanded_fraction_on
from repro.workload.generator import training_corpus

#: Iteration caps swept in Fig. 8(a).
ITERATION_SWEEP = (10, 30, 100, 300, 1000, 3000)


def synthetic_problem(
    n_threads: int, n_cores: int, seed: int
) -> EnergyEfficiencyObjective:
    """A random allocation problem built from hardware ground truth.

    Thread characteristics are drawn from the synthetic corpus; the S/P
    matrices use the hardware model directly (no prediction error), so
    the optimum is a property of the problem, not the predictor.
    """
    phases = training_corpus(n_threads, seed)
    core_types = [TABLE2_TYPES[i % len(TABLE2_TYPES)] for i in range(n_cores)]
    ips = np.zeros((n_threads, n_cores))
    power = np.zeros((n_threads, n_cores))
    util = np.zeros((n_threads, n_cores))
    for i, phase in enumerate(phases):
        for j, core_type in enumerate(core_types):
            perf = microarch.estimate(phase, core_type)
            ips[i, j] = perf.ips(core_type)
            power[i, j] = power_model.busy_power(core_type, perf.ipc).total_w
            util[i, j] = demanded_fraction_on(phase, core_type)
    idle = [power_model.idle_power(t).total_w for t in core_types]
    sleep = [power_model.sleep_power(t) for t in core_types]
    return EnergyEfficiencyObjective(
        ips=ips, power=power, utilization=util, idle_power=idle, sleep_power=sleep
    )


def brute_force_optimum(objective: EnergyEfficiencyObjective) -> float:
    """Exhaustive search over all n^m allocations (small cases only)."""
    m, n = objective.n_threads, objective.n_cores
    if n ** m > 2_000_000:
        raise ValueError(
            f"{n}^{m} allocations is too many for exhaustive search"
        )
    best = float("-inf")
    for mapping in itertools.product(range(n), repeat=m):
        value = objective.evaluate_mapping(mapping)
        if value > best:
            best = value
    return best


def distance_to_optimal(
    max_iterations: int,
    n_threads: int = 6,
    n_cores: int = 4,
    n_problems: int = 5,
) -> float:
    """Mean relative gap to the known optimum at one iteration cap."""
    gaps = []
    for seed in range(n_problems):
        objective = synthetic_problem(n_threads, n_cores, seed)
        optimum = brute_force_optimum(objective)
        initial = Allocation.round_robin(n_threads, n_cores)
        config = SAConfig(max_iterations=max_iterations, seed=seed + 1)
        result = anneal(objective, initial, config)
        gaps.append(max(0.0, (optimum - result.best_value) / optimum))
    return mean(gaps)


def run_fig8a(
    sweep=ITERATION_SWEEP, n_threads: int = 6, n_cores: int = 4, n_problems: int = 5
) -> ExperimentResult:
    """Fig. 8(a): distance to optimal vs iteration cap + per-scale caps."""
    rows = []
    final_gap = None
    for cap in sweep:
        gap = distance_to_optimal(cap, n_threads, n_cores, n_problems)
        final_gap = gap
        rows.append([cap, round(100 * gap, 2)])
    cap_rows = [
        [f"{c}c/{t}t", default_iteration_cap(c, t)] for c, t in SCALING_SCENARIOS
    ]
    rows.append(["--- per-scale caps ---", ""])
    rows.extend(cap_rows)
    return ExperimentResult(
        experiment_id="fig8a",
        title="Fig. 8(a): SA distance to optimal vs iteration budget "
        f"({n_threads} threads on {n_cores} cores, known-optimal synthetics)",
        headers=["max iterations / scale", "distance to optimal %"],
        rows=rows,
        findings=(
            Finding(
                name="distance to optimal at largest budget",
                measured=100 * (final_gap or 0.0),
                unit="%",
            ),
        ),
    )


def run_fig8b() -> ExperimentResult:
    """Fig. 8(b): optimizer parameter values used."""
    config = SAConfig()
    rows = [
        ["Opt_perturb (initial perturbation)", config.initial_perturbation],
        ["Opt_dperturb (perturbation decay)", config.perturbation_decay],
        ["Opt_accept (initial acceptance)", config.initial_acceptance],
        ["Opt_daccept (acceptance decay)", config.acceptance_decay],
        ["fixed-point exp", config.use_fixed_point_exp],
        ["incremental objective", config.incremental],
        ["PRNG", "xorshift32"],
    ]
    return ExperimentResult(
        experiment_id="fig8b",
        title="Fig. 8(b): Optimization parameter values",
        headers=["parameter", "value"],
        rows=rows,
    )


def main() -> None:
    user_output(run_fig8a().render())
    user_output()
    user_output(run_fig8b().render())


if __name__ == "__main__":
    main()
