"""End-to-end integration tests across the full stack.

These exercise the headline claims on reduced scales: the closed loop
(simulated hardware -> noisy sensing -> estimation/prediction -> SA ->
migration -> CFS) must reproduce the paper's orderings.
"""

import pytest

from repro.hardware.platform import big_little_octa, build_platform, quad_hmp
from repro.hardware.features import MEDIUM, SMALL
from repro.kernel.balancers.base import NullBalancer
from repro.kernel.balancers.gts import GtsBalancer
from repro.kernel.balancers.iks import IksBalancer
from repro.kernel.balancers.smart import SmartBalanceKernelAdapter
from repro.kernel.balancers.vanilla import VanillaBalancer
from repro.kernel.simulator import SimulationConfig, System
from repro.workload.parsec import benchmark, mix_threads
from repro.workload.synthetic import imb_threads

EPOCHS = 20


def run(platform, threads, balancer, seed=0):
    system = System(platform, threads, balancer, SimulationConfig(seed=seed))
    return system.run(n_epochs=EPOCHS)


class TestHeadlineOrderings:
    """The paper's main results, at reduced scale."""

    @pytest.mark.parametrize("config", ["HTHI", "MTMI", "LTLI"])
    def test_smart_beats_vanilla_on_imbs(self, config):
        platform = quad_hmp()
        vanilla = run(platform, imb_threads(config, 8), VanillaBalancer())
        smart = run(platform, imb_threads(config, 8), SmartBalanceKernelAdapter())
        assert smart.improvement_over(vanilla) > 10.0

    @pytest.mark.parametrize("bench", ["x264_L_bow", "bodytrack"])
    def test_smart_beats_vanilla_on_parsec(self, bench):
        platform = quad_hmp()
        vanilla = run(platform, benchmark(bench).threads(4), VanillaBalancer())
        smart = run(
            platform, benchmark(bench).threads(4), SmartBalanceKernelAdapter()
        )
        assert smart.improvement_over(vanilla) > 10.0

    def test_smart_beats_vanilla_on_mix(self):
        platform = quad_hmp()
        vanilla = run(platform, mix_threads("Mix6", 2), VanillaBalancer())
        smart = run(platform, mix_threads("Mix6", 2), SmartBalanceKernelAdapter())
        assert smart.improvement_over(vanilla) > 10.0

    def test_smart_competitive_with_gts_on_biglittle(self):
        platform = big_little_octa()
        threads = lambda: benchmark("x264_L_bow").threads(8)  # noqa: E731
        gts = run(platform, threads(), GtsBalancer())
        smart = run(platform, threads(), SmartBalanceKernelAdapter())
        assert smart.improvement_over(gts) > 5.0

    def test_gts_beats_iks(self):
        """GTS improved on IKS (paper Section 2) — our models must
        preserve that ordering on interactive workloads."""
        platform = big_little_octa()
        threads = lambda: imb_threads("MTMI", 8)  # noqa: E731
        iks = run(platform, threads(), IksBalancer())
        gts = run(platform, threads(), GtsBalancer())
        assert gts.ips_per_watt > 0.9 * iks.ips_per_watt

    def test_throughput_not_sacrificed_on_rate_limited_load(self):
        """SmartBalance must deliver (nearly) the demanded work."""
        platform = quad_hmp()
        vanilla = run(platform, imb_threads("MTMI", 8), VanillaBalancer())
        smart = run(platform, imb_threads("MTMI", 8), SmartBalanceKernelAdapter())
        assert smart.instructions > 0.85 * vanilla.instructions


class TestClosedLoopMechanics:
    def test_smart_consolidates_light_load(self):
        """Two light threads should abandon the Huge core entirely."""
        platform = quad_hmp()
        smart = run(platform, imb_threads("LTHI", 2), SmartBalanceKernelAdapter())
        huge = [c for c in smart.core_stats if c.core_type_name == "Huge"][0]
        total = smart.instructions
        assert huge.instructions < 0.25 * total

    def test_vanilla_strands_light_load_on_big_cores(self):
        """The baseline's defect: even distribution parks work on the
        power-hungry cores."""
        platform = quad_hmp()
        vanilla = run(platform, imb_threads("LTHI", 2), VanillaBalancer())
        huge = [c for c in vanilla.core_stats if c.core_type_name == "Huge"][0]
        assert huge.instructions > 0.0
        assert huge.energy_j > 0.5 * vanilla.energy_j

    def test_migrations_bounded(self):
        """The adoption gate keeps migration churn bounded."""
        platform = quad_hmp()
        smart = run(platform, imb_threads("MTMI", 8), SmartBalanceKernelAdapter())
        assert smart.migrations < 8 * EPOCHS / 2

    def test_custom_heterogeneous_platform_works(self):
        """SmartBalance generalises past big.LITTLE (3+ types)."""
        from repro.core.training import train_predictor
        from repro.hardware.features import HUGE

        platform = build_platform([(HUGE, 1), (MEDIUM, 2), (SMALL, 1)])
        predictor = train_predictor(platform.core_types, n_synthetic=50)
        smart = run(
            platform,
            imb_threads("MTMI", 6),
            SmartBalanceKernelAdapter(predictor=predictor),
        )
        vanilla = run(platform, imb_threads("MTMI", 6), VanillaBalancer())
        assert smart.improvement_over(vanilla) > 20.0

    def test_null_balancer_is_the_floor(self):
        platform = quad_hmp()
        null = run(platform, imb_threads("HTHI", 8), NullBalancer())
        smart = run(platform, imb_threads("HTHI", 8), SmartBalanceKernelAdapter())
        assert smart.ips_per_watt > null.ips_per_watt


class TestDynamicWorkloads:
    def test_late_arrivals_get_balanced(self):
        from repro.workload.thread import steady_thread
        from repro.workload.characteristics import COMPUTE_PHASE
        from repro.workload.demand import with_duty

        late_phase = with_duty(COMPUTE_PHASE, duty=0.3)
        threads = imb_threads("MTMI", 3) + [
            steady_thread("late", late_phase, arrival_s=0.3)
        ]
        platform = quad_hmp()
        system = System(platform, threads, SmartBalanceKernelAdapter())
        result = system.run(n_epochs=EPOCHS)
        late_stats = [t for t in result.task_stats if t.name == "late"][0]
        assert late_stats.instructions > 0.0

    def test_exiting_threads_free_capacity(self):
        from repro.workload.synthetic import imb_threads as make

        short = make("HTLI", 2, total_instructions=5e7)
        long = make("HTLI", 2, seed=1)
        platform = quad_hmp()
        system = System(platform, short + long, SmartBalanceKernelAdapter())
        result = system.run(n_epochs=EPOCHS)
        from repro.kernel.task import TaskState

        assert system.tasks[0].state is TaskState.EXITED
        assert result.instructions > 0.0


class TestReproducibility:
    def test_identical_runs_identical_results(self):
        platform = quad_hmp()

        def once():
            return run(
                platform, imb_threads("MTMI", 6), SmartBalanceKernelAdapter(), seed=3
            )

        a, b = once(), once()
        assert a.instructions == b.instructions
        assert a.energy_j == b.energy_j
        assert a.migrations == b.migrations
