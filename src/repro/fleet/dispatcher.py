"""The energy-aware fleet dispatcher and its defence stack.

The dispatcher is the fleet-level SmartBalance: it senses (node
telemetry + heartbeats), predicts (profiled per-(slot, platform)
IPS/W, telemetry-corrected), and balances (places each request where
predicted fleet J_E gains the most).  Around that loop sits the
defence-in-depth the chaos scenarios attack:

============================  =====================================
fault                         defence
============================  =====================================
node crash                    heartbeat failure detection (timeout +
                              suspicion) → rescue + reroute of every
                              outstanding job on the dead node
node hang / slow node         hedged re-dispatch once an attempt is
                              ``hedge_factor`` × its expected age;
                              exactly-once completion via the ledger
network partition             same detectors fire (silence is
                              silence); completions buffered by the
                              partition are deduplicated on heal
flapping / repeat offenders   per-node circuit breakers (open after
                              ``circuit_threshold`` consecutive
                              failures, cooldown, half-open probe)
corrupt telemetry             sanity bounds vs the profiled nominal;
                              last-good sample kept
stale telemetry               staleness discounting; fresh-quorum
                              census
telemetry blackout < quorum   graceful degradation to round-robin
dispatch storm                bounded retries with deterministic
                              exponential backoff + seeded jitter
============================  =====================================

The dispatcher never touches wall-clock time or unseeded randomness:
every decision is a function of (spec, virtual time, delivered
messages), which is what makes the fleet trace byte-identical across
runs and worker counts.

It is driven by the simulation through five entry points —
:meth:`~Dispatcher.start`, :meth:`~Dispatcher.submit`,
:meth:`~Dispatcher.tick`, :meth:`~Dispatcher.on_heartbeat`,
:meth:`~Dispatcher.on_complete`, :meth:`~Dispatcher.retry` — and
answers with :class:`Action` lists (deliver this job there, call me
back at that time) so it stays a pure state machine that unit tests
can drive directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fleet import membership
from repro.fleet.membership import FailureDetector
from repro.fleet.profiles import ProfileTable
from repro.fleet.router import RouteContext, Router
from repro.fleet.spec import FleetJob, FleetSpec
from repro.fleet.telemetry import NodeTelemetry, TelemetryStore
from repro.obs import events as ev
from repro.obs import NULL_OBS


@dataclass(frozen=True)
class Action:
    """One instruction back to the simulation loop.

    * ``kind="dispatch"`` — deliver ``job`` (attempt ``attempt``) to
      ``node`` now.
    * ``kind="retry"`` — call :meth:`Dispatcher.retry` for ``job`` at
      ``at_s``.
    """

    kind: str
    job: FleetJob
    node: int = -1
    attempt: int = 0
    at_s: float = 0.0
    cause: str = ""


@dataclass
class AttemptRecord:
    """One dispatch attempt of one job, as the ledger remembers it."""

    node: int
    attempt: int
    dispatch_s: float
    #: Expected completion (dispatch + believed backlog × profiled
    #: duration) — the hedging yardstick.
    expected_s: float
    #: outstanding → won | duplicate | rescued | lost
    status: str = "outstanding"
    hedged: bool = False


@dataclass
class JobRecord:
    """The ledger entry of one accepted job."""

    job: FleetJob
    attempts: "list[AttemptRecord]" = field(default_factory=list)
    completed: bool = False
    completed_s: float = 0.0
    completed_by: int = -1
    completion_attempt: int = -1
    failed: bool = False
    first_dispatch_s: float = -1.0

    def outstanding_on(self, node: int) -> "list[AttemptRecord]":
        return [a for a in self.attempts
                if a.status == "outstanding" and a.node == node]


@dataclass
class FleetStats:
    """Dispatcher-side counters (part of the deterministic result)."""

    accepted: int = 0
    dispatches: int = 0
    completions: int = 0
    duplicates: int = 0
    failed: int = 0
    reroutes: int = 0
    hedges: int = 0
    retries: int = 0
    heartbeats_missed: int = 0
    nodes_down: int = 0
    nodes_recovered: int = 0
    telemetry_rejected: int = 0
    stale_fallbacks: int = 0
    degraded_dispatches: int = 0
    circuit_opens: int = 0
    circuit_closes: int = 0

    def to_dict(self) -> dict:
        return dict(sorted(self.__dict__.items()))


class _CircuitBreaker:
    """Per-node dispatch circuit: closed → open → half-open → closed."""

    __slots__ = ("threshold", "cooldown_s", "state", "failures",
                 "opened_s", "probe_job")

    def __init__(self, threshold: int, cooldown_s: float) -> None:
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self.state = "closed"
        self.failures = 0
        self.opened_s = 0.0
        self.probe_job: "str | None" = None

    def available(self, now: float) -> bool:
        if self.state == "closed":
            return True
        if self.state == "open":
            return now - self.opened_s >= self.cooldown_s
        return self.probe_job is None  # half-open: one probe at a time

    def on_dispatch(self, job_id: str, now: float) -> bool:
        """Note a dispatch through the breaker; True when this was the
        half-open probe."""
        if self.state == "open" and now - self.opened_s >= self.cooldown_s:
            self.state = "half_open"
        if self.state == "half_open" and self.probe_job is None:
            self.probe_job = job_id
            return True
        return False

    def on_failure(self, now: float) -> bool:
        """Record a failure; True when the circuit just opened."""
        self.failures += 1
        if self.state == "half_open":
            self.state = "open"
            self.opened_s = now
            self.probe_job = None
            return True
        if self.state == "closed" and self.failures >= self.threshold:
            self.state = "open"
            self.opened_s = now
            return True
        return False

    def on_success(self) -> "str | None":
        """Record a success; returns the probe job id when the circuit
        just closed out of half-open."""
        self.failures = 0
        if self.state in ("half_open", "open"):
            probe = self.probe_job
            self.state = "closed"
            self.probe_job = None
            return probe if probe is not None else ""
        return None


class Dispatcher:
    """Central placement + fault-defence state machine."""

    def __init__(
        self,
        spec: FleetSpec,
        profiles: ProfileTable,
        platforms: "dict[int, str]",
        obs=NULL_OBS,
    ) -> None:
        self.spec = spec
        self.profiles = profiles
        self.platforms = platforms
        self.obs = obs
        nodes = sorted(platforms)
        self.router = Router(spec.policy)
        self.detector = FailureDetector(
            nodes, spec.heartbeat_s, spec.suspect_after, spec.dead_after
        )
        self.telemetry = TelemetryStore(
            {n: profiles.nominal_ips_per_watt(platforms[n]) for n in nodes},
            spec.heartbeat_s,
            spec.telemetry_bound,
            spec.staleness_discount,
        )
        self._breakers = {
            n: _CircuitBreaker(spec.circuit_threshold, spec.circuit_cooldown_s)
            for n in nodes
        }
        self._jitter = spec.jitter_rng()
        self.ledger: "dict[str, JobRecord]" = {}
        self._backlog = {n: 0 for n in nodes}
        self._degraded = False
        self.stats = FleetStats()

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _emit(self, etype: str, now: float, **payload: object) -> None:
        if self.obs.enabled:
            self.obs.tracer.emit(etype, now, **payload)

    def _route_context(self, now: float) -> RouteContext:
        return RouteContext(
            spec=self.spec,
            profiles=self.profiles,
            telemetry=self.telemetry,
            platforms=self.platforms,
            backlog=self._backlog,
            now=now,
        )

    def _quorum_degraded(self, now: float) -> bool:
        fraction = self.telemetry.fresh_fraction(self.detector.nodes(), now)
        degraded = fraction < self.spec.quorum
        if degraded and not self._degraded:
            self._emit(ev.MITIGATION, now, kind="quorum_degraded",
                       cause="telemetry_loss")
        self._degraded = degraded
        return degraded

    def _candidates(self, now: float) -> "list[int]":
        """Placeable nodes, best tier first: UP with a willing breaker,
        then not-DOWN with a willing breaker, then any not-DOWN."""
        alive = self.detector.alive()
        open_alive = [n for n in alive if self._breakers[n].available(now)]
        if open_alive:
            return open_alive
        not_down = self.detector.not_down()
        open_not_down = [n for n in not_down
                         if self._breakers[n].available(now)]
        if open_not_down:
            return open_not_down
        return not_down

    def _backoff_s(self, attempt: int) -> float:
        """Deterministic exponential backoff + seeded jitter."""
        base = self.spec.retry_base_s * (2 ** max(0, attempt - 1))
        return base + self._jitter.uniform(0.0, self.spec.retry_base_s)

    # ------------------------------------------------------------------
    # Entry points (called by the simulation)
    # ------------------------------------------------------------------

    def start(self, now: float = 0.0) -> None:
        for node in self.detector.nodes():
            self._emit(ev.NODE_UP, now, node=node,
                       platform=self.platforms[node], detail="boot")

    def submit(self, job: FleetJob, now: float) -> "list[Action]":
        """Accept a new request and place its first attempt."""
        self.ledger[job.job_id] = JobRecord(job=job)
        self.stats.accepted += 1
        return self._dispatch(job, now, cause="arrival")

    def _dispatch(self, job: FleetJob, now: float, cause: str) -> "list[Action]":
        record = self.ledger[job.job_id]
        attempt = len(record.attempts) + 1
        if attempt > self.spec.max_attempts:
            return self._give_up(record, now)
        candidates = self._candidates(now)
        if not candidates:
            # Whole fleet dark: bounded retry, don't drop the job.
            if attempt < self.spec.max_attempts:
                self.stats.retries += 1
                return [Action(kind="retry", job=job,
                               at_s=now + self._backoff_s(attempt),
                               cause="no_nodes")]
            return self._give_up(record, now)

        degraded = self._quorum_degraded(now)
        node = self.router.select(job, candidates, self._route_context(now),
                                  degraded)
        breaker = self._breakers[node]
        breaker.on_dispatch(job.job_id, now)
        backlog = self._backlog[node]
        expected = now + (backlog + 1) * self.profiles.get(
            job.slot, self.platforms[node]).duration_s
        record.attempts.append(AttemptRecord(
            node=node, attempt=attempt, dispatch_s=now, expected_s=expected,
        ))
        if record.first_dispatch_s < 0:
            record.first_dispatch_s = now
        self._backlog[node] = backlog + 1
        self.stats.dispatches += 1
        if degraded:
            self.stats.degraded_dispatches += 1
        if (not self.telemetry.is_fresh(node, now)
                and self.telemetry.last_good(node) is not None):
            self.stats.stale_fallbacks += 1
            self._emit(ev.MITIGATION, now, kind="stale_fallback",
                       cause="telemetry_age", node=node, job=job.job_id)
        self._emit(ev.FLEET_DISPATCH, now, job=job.job_id, node=node,
                   attempt=attempt, policy=self.spec.policy,
                   queue_depth=backlog, degraded=degraded)
        if cause != "arrival":
            self.stats.reroutes += 1
            self._emit(ev.REROUTE, now, job=job.job_id, to_node=node,
                       cause=cause, attempt=attempt)
        return [Action(kind="dispatch", job=job, node=node, attempt=attempt)]

    def _give_up(self, record: JobRecord, now: float) -> "list[Action]":
        if not record.failed and not record.completed:
            record.failed = True
            self.stats.failed += 1
        return []

    def retry(self, job_id: str, now: float, cause: str) -> "list[Action]":
        """A scheduled backoff timer fired: place the job again."""
        record = self.ledger[job_id]
        if record.completed or record.failed:
            return []
        return self._dispatch(record.job, now, cause=cause)

    def on_heartbeat(self, sample: NodeTelemetry, now: float) -> None:
        """One node's heartbeat + telemetry arrived."""
        node = sample.node
        recovered = self.detector.heartbeat(node, now)
        if recovered is not None:
            self.stats.nodes_recovered += 1
            self._emit(ev.NODE_UP, now, node=node,
                       platform=self.platforms[node],
                       detail=f"recovered from {recovered}")
        if not self.telemetry.ingest(sample):
            self.stats.telemetry_rejected += 1
            self._emit(ev.MITIGATION, now, kind="telemetry_rejected",
                       cause="out_of_bounds", node=node)

    def on_complete(self, job_id: str, node: int, attempt: int,
                    now: float) -> None:
        """A completion notification arrived (possibly late, possibly
        a duplicate of a hedge race — exactly-once is decided here)."""
        record = self.ledger[job_id]
        self._backlog[node] = max(0, self._backlog[node] - 1)
        for a in record.attempts:
            if a.node == node and a.attempt == attempt:
                a.status = "duplicate" if record.completed else "won"
        probe = self._breakers[node].on_success()
        if probe is not None:
            self.stats.circuit_closes += 1
            self._emit(ev.CIRCUIT_CLOSE, now, node=node,
                       probe_job=probe or job_id)
        latency = now - record.job.arrival_s
        if record.completed:
            self.stats.duplicates += 1
            self._emit(ev.FLEET_COMPLETE, now, job=job_id, node=node,
                       attempt=attempt, duplicate=True,
                       latency_s=round(latency, 9))
            self._emit(ev.MITIGATION, now, kind="duplicate_suppressed",
                       cause="hedged_dispatch", node=node, job=job_id)
            return
        record.completed = True
        record.completed_s = now
        record.completed_by = node
        record.completion_attempt = attempt
        record.failed = False
        self.stats.completions += 1
        self._emit(ev.FLEET_COMPLETE, now, job=job_id, node=node,
                   attempt=attempt, duplicate=False,
                   latency_s=round(latency, 9))

    def tick(self, now: float) -> "list[Action]":
        """Periodic maintenance: advance suspicion, rescue jobs from
        dead nodes, hedge attempts that have gone quiet."""
        actions: "list[Action]" = []
        for node, misses, state in self.detector.check(now):
            self.stats.heartbeats_missed += 1
            self._emit(ev.HEARTBEAT_MISSED, now, node=node, misses=misses)
            if state == membership.DOWN:
                actions.extend(self._handle_node_down(node, now))
        actions.extend(self._hedge(now))
        return actions

    def _handle_node_down(self, node: int, now: float) -> "list[Action]":
        rescued: "list[JobRecord]" = []
        for job_id in sorted(self.ledger):
            record = self.ledger[job_id]
            if record.completed or record.failed:
                continue
            outstanding = record.outstanding_on(node)
            if not outstanding:
                continue
            for a in outstanding:
                a.status = "rescued"
            # Only reroute when the job has no other live attempt.
            if not any(a.status == "outstanding" for a in record.attempts):
                rescued.append(record)
        self.stats.nodes_down += 1
        self._backlog[node] = 0
        if self._breakers[node].on_failure(now):
            self.stats.circuit_opens += 1
            self._emit(ev.CIRCUIT_OPEN, now, node=node,
                       failures=self._breakers[node].failures,
                       cooldown_s=self.spec.circuit_cooldown_s)
        self._emit(ev.NODE_DOWN, now, node=node, cause="heartbeat_timeout",
                   jobs_rescued=len(rescued))
        actions: "list[Action]" = []
        for record in rescued:
            attempt = len(record.attempts) + 1
            if attempt > self.spec.max_attempts:
                self._give_up(record, now)
                continue
            self.stats.retries += 1
            actions.append(Action(
                kind="retry", job=record.job,
                at_s=now + self._backoff_s(attempt), cause="node_down",
            ))
        return actions

    def _hedge(self, now: float) -> "list[Action]":
        actions: "list[Action]" = []
        for job_id in sorted(self.ledger):
            record = self.ledger[job_id]
            if record.completed or record.failed:
                continue
            if len(record.attempts) >= self.spec.max_attempts:
                continue
            for a in record.attempts:
                if a.status != "outstanding" or a.hedged:
                    continue
                horizon = a.expected_s - a.dispatch_s
                if now - a.dispatch_s < self.spec.hedge_factor * horizon:
                    continue
                a.hedged = True
                self.stats.hedges += 1
                if self._breakers[a.node].on_failure(now):
                    self.stats.circuit_opens += 1
                    self._emit(ev.CIRCUIT_OPEN, now, node=a.node,
                               failures=self._breakers[a.node].failures,
                               cooldown_s=self.spec.circuit_cooldown_s)
                self._emit(ev.MITIGATION, now, kind="hedged_dispatch",
                           cause="slow_node", node=a.node, job=job_id)
                actions.extend(self._dispatch(record.job, now,
                                              cause="timeout"))
                break  # at most one new hedge per job per tick
        return actions
