#!/usr/bin/env python3
"""Thermal-aware balancing via Eq. 11's core weights.

Enables the per-core RC thermal model (with leakage-temperature
feedback) and compares plain SmartBalance against a thermally-aware
variant that derives the ω_j weights from core temperatures each
epoch — hot cores get depreferred before they hit the junction limit.

The workload (CPU-bound blackscholes) is one where the efficiency
objective keeps the Huge core busy for its throughput — pushing it past
the configured thermal envelope.  With thermal awareness on, the Huge
core's weight collapses as it heats and SmartBalance evacuates and
power-gates it.

Run:  python examples/thermal_aware.py
"""

from repro import SmartBalanceKernelAdapter, System, benchmark, quad_hmp
from repro.analysis import format_table
from repro.core import SmartBalanceConfig
from repro.kernel import SimulationConfig


def run_variant(thermal_aware: bool):
    balancer = SmartBalanceKernelAdapter(
        config=SmartBalanceConfig(
            thermal_aware=thermal_aware,
            # Aggressive thermal envelope: de-rate from 60 C, forbid 78 C.
            thermal_knee_c=60.0,
            thermal_zero_c=78.0,
        )
    )
    config = SimulationConfig(thermal_enabled=True, seed=1)
    system = System(
        quad_hmp(), benchmark("blackscholes").threads(8), balancer, config
    )
    return system.run(n_epochs=50)


def main() -> None:
    plain = run_variant(thermal_aware=False)
    aware = run_variant(thermal_aware=True)

    rows = []
    for label, result in (("plain", plain), ("thermal-aware", aware)):
        peak = max(c.peak_temp_c for c in result.core_stats)
        rows.append(
            [
                label,
                f"{result.ips_per_watt:.3e}",
                f"{result.average_ips:.3e}",
                f"{peak:.1f} C",
                result.migrations,
            ]
        )
    print(
        format_table(
            ["variant", "instr/J", "IPS", "peak temp", "migrations"],
            rows,
            title="SmartBalance with and without thermal-aware weights "
            "(quad HMP, blackscholes x 8, RC thermal model on)",
        )
    )
    print("\nPer-core peak temperatures:")
    for label, result in (("plain", plain), ("thermal-aware", aware)):
        temps = {c.core_type_name: f"{c.peak_temp_c:.1f}" for c in result.core_stats}
        print(f"  {label:>13}: {temps}")


if __name__ == "__main__":
    main()
