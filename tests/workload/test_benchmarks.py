"""Tests for the PARSEC models, IMBs and the random generator."""

import random

import pytest

from repro.workload.generator import (
    random_behavior,
    random_phase,
    random_thread_set,
    training_corpus,
)
from repro.workload.parsec import (
    BENCHMARKS,
    EVALUATION_SET,
    MIXES,
    benchmark,
    mix_threads,
)
from repro.workload.synthetic import IMB_CONFIGS, imb_threads, parse_config


class TestParsecModels:
    def test_all_evaluation_benchmarks_exist(self):
        for name in EVALUATION_SET:
            assert name in BENCHMARKS

    def test_x264_variants_exist(self):
        for rate in ("H", "L"):
            for video in ("crew", "bow"):
                assert f"x264_{rate}_{video}" in BENCHMARKS

    def test_threads_returns_requested_count(self):
        assert len(benchmark("bodytrack").threads(6)) == 6

    def test_threads_deterministic_per_seed(self):
        a = benchmark("bodytrack").threads(4, seed=1)
        b = benchmark("bodytrack").threads(4, seed=1)
        assert [t.phase_at(0.0) for t in a] == [t.phase_at(0.0) for t in b]

    def test_threads_vary_across_seeds(self):
        a = benchmark("bodytrack").threads(1, seed=1)[0]
        b = benchmark("bodytrack").threads(1, seed=2)[0]
        assert a.phase_at(0.0) != b.phase_at(0.0)

    def test_threads_within_benchmark_jittered(self):
        threads = benchmark("ferret").threads(4, seed=0)
        ilps = {t.phase_at(0.0).ilp for t in threads}
        assert len(ilps) == 4

    def test_x264_h_heavier_than_l(self):
        """High frame-rate x264 is CPU-bound; low-rate is rate-limited."""
        high = benchmark("x264_H_crew").threads(1, 0)[0].phase_at(0.0)
        low = benchmark("x264_L_crew").threads(1, 0)[0].phase_at(0.0)
        assert high.work_rate_ips is None
        assert low.work_rate_ips is not None

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError, match="unknown benchmark"):
            benchmark("doom")

    def test_zero_threads_rejected(self):
        with pytest.raises(ValueError):
            benchmark("vips").threads(0)


class TestMixes:
    def test_table3_mix_membership(self):
        assert MIXES["Mix1"] == ("x264_H_crew", "x264_H_bow")
        assert MIXES["Mix5"] == ("bodytrack", "x264_H_crew")
        assert MIXES["Mix6"] == ("bodytrack", "x264_H_crew", "x264_L_bow")

    def test_six_mixes(self):
        assert len(MIXES) == 6

    def test_mix_thread_count(self):
        assert len(mix_threads("Mix6", 2)) == 6
        assert len(mix_threads("Mix1", 3)) == 6

    def test_unknown_mix_raises(self):
        with pytest.raises(KeyError, match="unknown mix"):
            mix_threads("Mix9", 2)


class TestImb:
    def test_nine_configs(self):
        assert len(IMB_CONFIGS) == 9
        assert "HTHI" in IMB_CONFIGS and "LTLI" in IMB_CONFIGS

    def test_parse_config(self):
        assert parse_config("HTMI") == ("H", "M")

    @pytest.mark.parametrize("bad", ["HTXI", "HH", "htHI", "HIHT", ""])
    def test_parse_rejects_bad_labels(self, bad):
        with pytest.raises(ValueError):
            parse_config(bad)

    def test_threads_created(self):
        threads = imb_threads("MTMI", 5)
        assert len(threads) == 5
        assert all(t.name.startswith("imb-MTMI") for t in threads)

    def test_interactivity_orders_duty(self):
        """Higher interactivity = lower CPU demand on the ref core."""
        from repro.hardware.features import MEDIUM
        from repro.workload.demand import demanded_fraction_on

        def duty(config):
            phase = imb_threads(config, 1)[0].phase_at(0.0)
            return demanded_fraction_on(phase, MEDIUM)

        assert duty("MTHI") < duty("MTMI") < duty("MTLI")

    def test_throughput_orders_ilp(self):
        def ilp(config):
            return imb_threads(config, 1)[0].phase_at(0.0).ilp

        assert ilp("LTMI") < ilp("MTMI") < ilp("HTMI")

    def test_deterministic(self):
        a = imb_threads("HTHI", 3, seed=5)
        b = imb_threads("HTHI", 3, seed=5)
        assert [t.phase_at(0.0) for t in a] == [t.phase_at(0.0) for t in b]


class TestGenerator:
    def test_random_phase_valid(self):
        rng = random.Random(0)
        for _ in range(200):
            phase = random_phase(rng)  # __post_init__ validates
            assert phase.ilp > 0

    def test_training_corpus_size_and_determinism(self):
        a = training_corpus(50, seed=3)
        b = training_corpus(50, seed=3)
        assert len(a) == 50
        assert a == b

    def test_training_corpus_spans_working_sets(self):
        corpus = training_corpus(200, seed=1)
        sizes = [p.working_set_kb for p in corpus]
        assert min(sizes) < 32.0
        assert max(sizes) > 4096.0

    def test_random_behavior_segments_bounded(self):
        rng = random.Random(2)
        for _ in range(50):
            behavior = random_behavior(rng, max_segments=3)
            assert 1 <= len(behavior.schedule.segments) <= 3

    def test_random_thread_set(self):
        threads = random_thread_set(7, seed=9)
        assert len(threads) == 7
        assert len({t.name for t in threads}) == 7

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            training_corpus(0)
