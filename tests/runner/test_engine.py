"""Engine mechanics: jobs resolution, dedup, crash disposition, sweeps."""

import pytest

from repro.runner import (
    JOBS_ENV,
    ResultCache,
    RunSpec,
    SweepExperiment,
    metrics_digest,
    resolve_jobs,
    run_specs,
    run_sweep,
)

TINY = RunSpec(workload="MTMI", threads=2, balancer="vanilla", n_epochs=2)
TINY_B = RunSpec(workload="HTHI", threads=2, balancer="vanilla", n_epochs=2)


class TestResolveJobs:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(JOBS_ENV, raising=False)
        assert resolve_jobs() == 1

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "8")
        assert resolve_jobs(2) == 2

    def test_env_is_used_when_no_arg(self, monkeypatch):
        monkeypatch.setenv(JOBS_ENV, "3")
        assert resolve_jobs() == 3

    def test_invalid_values_raise(self, monkeypatch):
        with pytest.raises(ValueError):
            resolve_jobs(0)
        monkeypatch.setenv(JOBS_ENV, "zero")
        with pytest.raises(ValueError):
            resolve_jobs()


class TestDedup:
    def test_identical_specs_run_once(self, tmp_path):
        cache = ResultCache(tmp_path)
        results = run_specs([TINY, TINY_B, TINY], cache=cache)
        assert cache.misses == 2, "duplicate spec should not execute"
        assert results[0] is results[2]
        assert metrics_digest(results[0]) == metrics_digest(results[2])

    def test_results_come_back_in_request_order(self):
        results = run_specs([TINY_B, TINY])
        assert results[0].instructions != results[1].instructions
        again = run_specs([TINY, TINY_B])
        assert metrics_digest(results[0]) == metrics_digest(again[1])
        assert metrics_digest(results[1]) == metrics_digest(again[0])


class TestOnError:
    BAD = RunSpec(workload="no-such-workload", threads=2, balancer="vanilla",
                  n_epochs=2)

    def test_crash_raises_by_default(self):
        with pytest.raises(RuntimeError, match="no-such-workload"):
            run_specs([self.BAD])

    def test_crash_maps_to_none_when_tolerated(self):
        good, bad = run_specs([TINY, self.BAD], on_error="none")
        assert good is not None
        assert bad is None

    def test_failures_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_specs([self.BAD], cache=cache, on_error="none")
        assert len(cache) == 0

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError):
            run_specs([TINY], on_error="ignore")


class TestBaseSeed:
    def test_base_seed_is_reproducible(self):
        first = run_specs([TINY, TINY_B], base_seed=11)
        second = run_specs([TINY, TINY_B], base_seed=11)
        assert [metrics_digest(r) for r in first] == [
            metrics_digest(r) for r in second
        ]

    def test_base_seed_changes_the_runs(self):
        plain = run_specs([TINY])[0]
        derived = run_specs([TINY], base_seed=11)[0]
        assert metrics_digest(plain) != metrics_digest(derived)


class TestRunSweep:
    def test_experiments_share_duplicated_jobs(self, tmp_path):
        cache = ResultCache(tmp_path)
        shared = [TINY, TINY_B]

        first = SweepExperiment(
            "first", lambda scale: shared, lambda scale, table: table[TINY]
        )
        second = SweepExperiment(
            "second", lambda scale: [TINY], lambda scale, table: table[TINY]
        )
        report_a, report_b = run_sweep([first, second], scale=None, cache=cache)
        assert cache.misses == 2, "the union should deduplicate across experiments"
        assert metrics_digest(report_a) == metrics_digest(report_b)
