"""Workload characterization primitives.

The hardware substrate needs a compact, architecture-independent
description of *what a thread is doing* so it can compute how fast the
thread would run — and how much power it would draw — on each
heterogeneous core type.  A :class:`WorkloadPhase` captures the
properties that drive the performance counters of paper Section 4.1:

* intrinsic instruction-level parallelism (how much a wide core helps),
* instruction mix (memory share ``I_msh`` and branch share ``I_bsh``),
* data/instruction footprints (cache and TLB miss rates),
* branch predictability,
* CPU demand duty cycle (the interactivity knob of the paper's IMBs).

Phases are *ground truth*: the OS and SmartBalance never see them
directly, only the noisy counter values they induce.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class WorkloadPhase:
    """One stationary phase of a thread's execution.

    Attributes
    ----------
    ilp:
        Mean exploitable instruction-level parallelism (independent
        instructions per cycle available to an infinitely wide core).
        Typical range 1–10.
    mem_share:
        Fraction of committed instructions that are loads/stores
        (``I_msh`` in the paper).
    branch_share:
        Fraction of committed instructions that are branches
        (``I_bsh``).
    working_set_kb:
        Data working-set size in KiB; drives L1D and D-TLB miss rates.
    code_footprint_kb:
        Hot code size in KiB; drives L1I and I-TLB miss rates.
    branch_entropy:
        Unpredictability of the branch stream in ``[0, 1]``; 0 means
        perfectly predictable, 1 means random.
    data_locality:
        Spatial/temporal locality factor in ``(0, 1]``; higher locality
        makes a cache of a given size behave as if larger.
    active_fraction:
        Nominal CPU duty cycle of the phase *on the reference core*
        (1.0 for CPU-bound, lower for interactive/IO-bound threads).
        Used by the workload builders to derive ``work_rate_ips``.
    work_rate_ips:
        Demanded work rate in instructions per second of wall time;
        ``None`` means CPU-bound (the thread always wants the CPU).
        A rate-limited thread (video frames, interactive requests)
        needs *more CPU time on a slower core* to deliver the same
        work: its demanded time fraction on core ``c`` is
        ``min(work_rate_ips / ips(phase, c), 1)``.  This is the
        property that makes capability-blind even distribution
        wasteful — parking a rate-limited thread on a big core burns
        big-core power for work a small core could deliver.
    """

    ilp: float
    mem_share: float
    branch_share: float
    working_set_kb: float
    code_footprint_kb: float = 16.0
    branch_entropy: float = 0.3
    data_locality: float = 1.0
    active_fraction: float = 1.0
    work_rate_ips: float | None = None

    def __post_init__(self) -> None:
        if self.ilp <= 0:
            raise ValueError(f"ilp must be positive, got {self.ilp}")
        for attr in ("mem_share", "branch_share", "branch_entropy", "active_fraction"):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{attr} must be in [0, 1], got {value}")
        if self.mem_share + self.branch_share > 1.0:
            raise ValueError(
                "mem_share + branch_share cannot exceed 1.0 "
                f"(got {self.mem_share} + {self.branch_share})"
            )
        if self.working_set_kb < 0 or self.code_footprint_kb < 0:
            raise ValueError("footprints must be non-negative")
        if not 0.0 < self.data_locality <= 1.0:
            raise ValueError(f"data_locality must be in (0, 1], got {self.data_locality}")
        if self.work_rate_ips is not None and self.work_rate_ips <= 0:
            raise ValueError(
                f"work_rate_ips must be positive or None, got {self.work_rate_ips}"
            )

    def scaled(self, **overrides: float) -> "WorkloadPhase":
        """Return a copy with selected attributes replaced."""
        return replace(self, **overrides)


#: A maximally core-friendly phase: used to probe peak throughput of a
#: core type (Table 2 "Peak Throughput" row).
PEAK_PHASE = WorkloadPhase(
    ilp=10.0,
    mem_share=0.05,
    branch_share=0.02,
    working_set_kb=4.0,
    code_footprint_kb=4.0,
    branch_entropy=0.0,
    data_locality=1.0,
)

#: A representative compute-bound phase (blackscholes-like).
COMPUTE_PHASE = WorkloadPhase(
    ilp=4.0,
    mem_share=0.25,
    branch_share=0.10,
    working_set_kb=64.0,
    code_footprint_kb=24.0,
    branch_entropy=0.15,
)

#: A representative memory-bound phase (canneal/streamcluster-like).
MEMORY_PHASE = WorkloadPhase(
    ilp=2.0,
    mem_share=0.45,
    branch_share=0.12,
    working_set_kb=2048.0,
    code_footprint_kb=32.0,
    branch_entropy=0.35,
    data_locality=0.5,
)
