"""End-to-end governor runs: identity, gains, kernel equivalence.

Everything here goes through :func:`execute_spec` — the same path the
CLI, the sweep runner and the service use — so the contracts pinned
are the ones users get.
"""

import pytest

from repro.kernel.simulator import SimulationConfig
from repro.obs import ObsContext, build_report, render_report, validate_events
from repro.runner.engine import execute_spec
from repro.runner.serialize import metrics_digest
from repro.runner.spec import RunSpec
from repro.service.api import ApiError, spec_from_payload


def spec(governor="fixed", *, platform="dvfsquad", kernel="reference", epochs=6):
    return RunSpec(
        workload="MTMI",
        platform=platform,
        threads=8,
        balancer="smartbalance",
        n_epochs=epochs,
        seed=0,
        governor=governor,
        config=SimulationConfig(kernel=kernel),
    )


class TestFixedIdentity:
    def test_fixed_is_byte_identical_to_default(self):
        """The default-off contract: governor='fixed' must reproduce
        the governor-free pipeline digest for digest."""
        default = execute_spec(spec())
        explicit = execute_spec(spec("fixed"))
        assert default.governor is None
        assert explicit.governor is None
        assert metrics_digest(default) == metrics_digest(explicit)

    def test_never_switching_governor_changes_nothing_physical(self):
        """pinned at the top (nominal) rung: the governor is active but
        every cluster stays at nominal, so no OPP change is ever
        queued and no core type is ever re-based."""
        result = execute_spec(spec("pinned:3"))
        assert result.governor is not None
        assert result.governor["opp_changes"] == 0


class TestGovernedRuns:
    @pytest.mark.parametrize("strategy", ["two_level", "coupled_anneal"])
    def test_dynamic_strategy_switches_and_reports(self, strategy):
        result = execute_spec(spec(strategy))
        stats = result.governor
        assert stats is not None
        assert stats["strategy"] == strategy
        assert stats["epochs"] > 0
        assert stats["opp_changes"] > 0, "governor never left nominal V/f"
        assert stats["candidates_evaluated"] > 0
        assert stats["transition_energy_j"] > 0.0
        assert set(stats["levels"]) == {"Huge", "Big", "Medium", "Small"}

    def test_two_level_beats_fixed_on_efficiency(self):
        fixed = execute_spec(spec())
        governed = execute_spec(spec("two_level"))
        assert governed.ips_per_watt > fixed.ips_per_watt

    def test_pinned_low_saves_power(self):
        fixed = execute_spec(spec())
        pinned = execute_spec(spec("pinned:0"))
        assert pinned.governor["opp_changes"] > 0
        assert pinned.average_power_w < fixed.average_power_w

    def test_governed_run_is_deterministic(self):
        first = execute_spec(spec("two_level"))
        second = execute_spec(spec("two_level"))
        assert metrics_digest(first) == metrics_digest(second)
        assert first.governor == second.governor

    def test_governor_survives_faults(self):
        """OPP re-basing composes with the fault layer (throttle faults
        rescale relative to the governed base type)."""
        faulted = RunSpec(
            workload="Mix1",
            platform="biglittle",
            threads=6,
            balancer="smartbalance",
            n_epochs=6,
            seed=3,
            faults="combined",
            governor="two_level",
        )
        first = execute_spec(faulted)
        second = execute_spec(faulted)
        assert first.governor is not None
        assert metrics_digest(first) == metrics_digest(second)


class TestKernelEquivalence:
    @pytest.mark.parametrize("strategy", ["two_level", "coupled_anneal"])
    def test_soa_matches_reference_under_opp_changes(self, strategy):
        """The SoA engine's on_core_type_changed path must track
        mid-run OPP re-basing exactly."""
        reference = execute_spec(spec(strategy, kernel="reference"))
        soa = execute_spec(spec(strategy, kernel="soa"))
        assert reference.governor["opp_changes"] > 0
        assert metrics_digest(reference) == metrics_digest(soa)


class TestObservability:
    def test_trace_schema_and_report_section(self):
        obs = ObsContext()
        execute_spec(spec("two_level"), obs=obs)
        events = obs.tracer.events
        assert not validate_events(events)
        types = {e["type"] for e in events}
        assert "governor_decision" in types
        assert "opp_change" in types
        rendered = render_report(build_report(events))
        assert "Governor (joint placement + DVFS)" in rendered

    def test_governor_summary_counts_match_stats(self):
        obs = ObsContext()
        result = execute_spec(spec("two_level"), obs=obs)
        report = build_report(obs.tracer.events)
        summary = report["governor"]
        assert summary["strategy"] == "two_level"
        assert summary["opp_switches"] == result.governor["opp_changes"]
        assert summary["final_levels"] == {
            cluster: level
            for cluster, level in result.governor["levels"].items()
            if level != 3  # unswitched clusters stayed at top: absent
        }


class TestServiceApi:
    def payload(self, **overrides):
        base = {
            "workload": "MTMI",
            "platform": "dvfsquad",
            "threads": 8,
            "balancer": "smartbalance",
            "n_epochs": 4,
        }
        base.update(overrides)
        return base

    def test_governor_accepted(self):
        parsed = spec_from_payload(self.payload(governor="two_level"))
        assert parsed.governor == "two_level"

    def test_pinned_pattern_accepted(self):
        assert spec_from_payload(self.payload(governor="pinned:1")).governor == "pinned:1"

    def test_default_is_fixed(self):
        assert spec_from_payload(self.payload()).governor == "fixed"

    def test_unknown_governor_rejected(self):
        with pytest.raises(ApiError):
            spec_from_payload(self.payload(governor="ondemand"))

    def test_malformed_pinned_rejected(self):
        with pytest.raises(ApiError, match="pinned"):
            spec_from_payload(self.payload(governor="pinned:low"))

    def test_governor_requires_smartbalance(self):
        with pytest.raises(ApiError, match="smartbalance"):
            spec_from_payload(
                self.payload(balancer="vanilla", governor="two_level")
            )
