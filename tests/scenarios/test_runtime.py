"""Scenario runtimes driven through real simulator runs.

Each family's runtime is exercised end-to-end: build the scenario,
run the System, and assert on the ``RunResult.scenario`` stats and
the emitted events rather than on internals.
"""

import pytest

from repro.kernel.simulator import SimulationConfig, System
from repro.obs import ObsContext
from repro.obs import events as ev
from repro.runner.factories import make_balancer, make_platform
from repro.scenarios import build_scenario
from repro.workload.characteristics import COMPUTE_PHASE
from repro.workload.thread import steady_thread


def run_scenario(
    text, platform="quad", n_epochs=2, seed=1, base=None, balancer="none"
):
    plat = make_platform(platform)
    config = SimulationConfig(seed=seed)
    behaviors = base if base is not None else [
        steady_thread("base/0", COMPUTE_PHASE)
    ]
    behaviors, runtime = build_scenario(
        text,
        behaviors,
        seed=seed,
        period_s=config.period_s,
        periods_per_epoch=config.periods_per_epoch,
        n_epochs=n_epochs,
    )
    obs = ObsContext()
    system = System(
        plat, behaviors, make_balancer(balancer), config,
        obs=obs, scenario=runtime,
    )
    result = system.run(n_epochs=n_epochs)
    return result, system, obs


class TestOpenLoopRuntime:
    def test_latency_stats_and_events(self):
        result, system, obs = run_scenario(
            "openloop:rate=120,slo_ms=15,work_minstr=2", n_epochs=3
        )
        stats = result.scenario
        assert stats["family"] == "openloop"
        assert stats["slo_s"] == 15e-3
        assert stats["requests"] > 0
        assert 0 < stats["completed"] <= stats["requests"]
        assert 0.0 <= stats["slo_miss_rate"] <= 1.0
        # Nearest-rank percentiles over real samples: ordered, and
        # every one an actual observed latency.
        p50, p95, p99 = (
            stats["latency_p50_s"],
            stats["latency_p95_s"],
            stats["latency_p99_s"],
        )
        assert 0 < p50 <= p95 <= p99
        completed = obs.tracer.by_type(ev.REQUEST_COMPLETED)
        arrived = obs.tracer.by_type(ev.REQUEST_ARRIVED)
        assert len(completed) == stats["completed"]
        assert len(arrived) >= len(completed)
        misses = sum(1 for e in completed if e["slo_miss"])
        assert misses == stats["slo_misses"]

    def test_latency_is_at_least_service_time(self):
        result, _, _ = run_scenario(
            "openloop:rate=120,slo_ms=15,work_minstr=2", n_epochs=3
        )
        # A request cannot complete before it arrived; every latency is
        # strictly positive and bounded by the run horizon.
        assert all(
            0 < lat < result.duration_s
            for lat in [result.scenario["latency_p99_s"]]
        )

    def test_builder_name_mismatch_raises(self):
        from repro.scenarios.runtime import OpenLoopRuntime

        plat = make_platform("quad")
        config = SimulationConfig(seed=0)
        runtime = OpenLoopRuntime({"req/9999": 0.01}, slo_s=0.02)
        with pytest.raises(ValueError, match="do not match"):
            System(
                plat,
                [steady_thread("base/0", COMPUTE_PHASE)],
                make_balancer("none"),
                config,
                scenario=runtime,
            )


class TestBarrierRuntime:
    def test_all_barriers_release_and_groups_finish(self):
        result, _, obs = run_scenario(
            "barrier:groups=2,members=3,intervals=3,interval_minstr=5",
            n_epochs=3,
        )
        stats = result.scenario
        assert stats["family"] == "barrier"
        assert stats["groups"] == 2
        assert stats["members"] == 6
        # Every *interior* interval ends in a release; the final
        # barrier coincides with exit (the kernel retires the thread),
        # so a finished run released groups x (intervals - 1).
        assert stats["barriers_released"] == 2 * (3 - 1)
        assert stats["groups_completed"] == 2
        assert stats["makespan_s"] is not None
        assert 0 < stats["makespan_s"] <= result.duration_s
        assert stats["stall_s"] >= 0.0
        stalls = obs.tracer.by_type(ev.BARRIER_STALL)
        assert len(stalls) == stats["barriers_released"]
        assert sum(e["stall_s"] for e in stalls) == pytest.approx(
            stats["stall_s"]
        )

    def test_unfinished_group_reports_no_makespan(self):
        # One epoch is nowhere near enough for this much work.
        result, _, _ = run_scenario(
            "barrier:groups=1,members=2,intervals=8,interval_minstr=500",
            n_epochs=1,
        )
        stats = result.scenario
        assert stats["makespan_s"] is None
        assert stats["groups_completed"] == 0
        assert stats["barriers_released"] < 8

    def test_members_block_while_waiting(self):
        # Strong imbalance: fast members must block at the barrier
        # until the slowest arrives, which shows up as stall time.
        result, _, _ = run_scenario(
            "barrier:groups=1,members=4,intervals=3,"
            "interval_minstr=8,imbalance=1",
            n_epochs=3,
        )
        assert result.scenario["stall_s"] > 0.0


class TestSmtRuntime:
    def test_core_selection_shapes(self):
        plat = make_platform("biglittle")
        n = len(plat.cores)
        big_ids = {
            c.core_id
            for c in sorted(
                plat.cores,
                key=lambda c: c.core_type.freq_mhz * c.core_type.issue_width,
                reverse=True,
            )[: n // 2]
        }
        cases = {
            "all": n,
            "half": n // 2,
            "big": n // 2,
        }
        for select, expected in cases.items():
            result, system, _ = run_scenario(
                f"smt:cores={select},corunners=2", platform="biglittle"
            )
            stats = result.scenario
            assert stats["family"] == "smt"
            assert stats["corunners"] == 2
            assert len(stats["smt_cores"]) == expected, select
            flagged = {
                q.core.core_id for q in system.runqueues if q.smt
            }
            assert flagged == set(stats["smt_cores"])
            if select == "big":
                assert flagged == big_ids

    def test_smt_cores_actually_corun(self):
        # With co-runners forced onto shared big cores the run must
        # record SMT contention (visible as throughput below the sum
        # of isolated rates — asserted indirectly: the scenario runs
        # to completion and reports the chosen cores).
        result, system, _ = run_scenario(
            "smt:cores=big,corunners=4", platform="biglittle", n_epochs=2
        )
        assert result.scenario["smt_cores"]
        assert result.instructions > 0
