#!/usr/bin/env python3
"""Heterogeneity by DVFS alone (paper Section 3's observation).

Four *identical* Medium-class cores, each pinned at a different
operating point, form an aggressively heterogeneous platform that the
two-type balancers cannot express — and SmartBalance treats exactly
like micro-architectural heterogeneity.

Run:  python examples/dvfs_platform.py
"""

from repro import (
    MEDIUM,
    SmartBalanceKernelAdapter,
    System,
    VanillaBalancer,
    imb_threads,
    train_predictor,
)
from repro.analysis import format_table
from repro.hardware.dvfs import dvfs_platform, energy_per_instruction, opp_table


def main() -> None:
    opps = opp_table(MEDIUM, n_points=4)
    print("Medium-core OPP table (energy/instruction at peak):")
    rows = [
        [f"{opp.freq_mhz:.0f} MHz", f"{opp.vdd:.2f} V",
         f"{ips:.3e}", f"{1e9 * epi:.3f} nJ"]
        for opp, ips, epi in energy_per_instruction(MEDIUM, opps)
    ]
    print(format_table(["frequency", "voltage", "peak IPS", "energy/instr"], rows))

    platform = dvfs_platform(MEDIUM, n_cores=4)
    print(f"\nPlatform: {platform.describe()}")

    predictor = train_predictor(platform.core_types)
    # Light, interactive threads: consolidation onto the low-V/f cores
    # (and power-gating the rest) is where DVFS heterogeneity pays.
    workload = lambda: imb_threads("MTHI", 4)  # noqa: E731
    results = {}
    for balancer in (
        VanillaBalancer(),
        SmartBalanceKernelAdapter(predictor=predictor),
    ):
        system = System(platform, workload(), balancer)
        result = system.run(n_epochs=30)
        results[result.balancer_name] = result
        print(
            f"{result.balancer_name:>13}: {result.ips_per_watt:.3e} "
            f"instructions/J ({result.migrations} migrations)"
        )
    gain = results["smartbalance"].improvement_over(results["vanilla"])
    print(f"\nSmartBalance gain on the DVFS-heterogeneous platform: {gain:+.1f} %")


if __name__ == "__main__":
    main()
