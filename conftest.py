"""Ensure the in-tree package is importable when running pytest from the
repository root, independent of whether an editable install succeeded."""

import os
import sys

_SRC = os.path.join(os.path.dirname(__file__), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="regenerate the golden-trace fixtures under "
        "tests/fixtures/golden/ from the current simulator instead of "
        "comparing against them",
    )
