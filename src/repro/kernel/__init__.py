"""Linux-like kernel scheduling substrate.

Stands in for the modified Linux 2.6 kernel of the paper's prototype:
task entities, per-core CFS run queues, epoch-aligned sensing views,
thread migration with cache warm-up, pluggable cross-core balancers
and a full-system discrete-time simulator.
"""

from repro.kernel.cfs import (
    CACHE_WARMUP_S,
    CONTEXT_SWITCH_COST_S,
    CfsRunQueue,
    PeriodResult,
    SliceResult,
    fair_shares,
)
from repro.kernel.metrics import CoreStats, EpochRecord, RunResult, TaskStats
from repro.kernel.simulator import MIGRATION_KERNEL_COST_S, SimulationConfig, System
from repro.kernel.soa import SoaKernel
from repro.kernel.task import Task, TaskState
from repro.kernel.view import CoreView, SystemView, TaskView

__all__ = [
    "Task",
    "TaskState",
    "CfsRunQueue",
    "PeriodResult",
    "SliceResult",
    "fair_shares",
    "CACHE_WARMUP_S",
    "CONTEXT_SWITCH_COST_S",
    "MIGRATION_KERNEL_COST_S",
    "System",
    "SimulationConfig",
    "SoaKernel",
    "SystemView",
    "TaskView",
    "CoreView",
    "RunResult",
    "EpochRecord",
    "CoreStats",
    "TaskStats",
]
