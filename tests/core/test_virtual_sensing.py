"""Tests for the sparse virtual sensing extension (paper Section 6.4)."""

import numpy as np
import pytest

from repro.core.estimation import FEATURE_NAMES
from repro.core.training import default_predictor, profile_phase
from repro.core.virtual_sensing import (
    ALWAYS_KNOWN,
    MINIMAL_OBSERVED,
    VirtualSensorModel,
    hidden_features,
    sparsify,
    train_virtual_sensors,
)
from repro.hardware import microarch
from repro.hardware.features import BIG, HUGE, TABLE2_TYPES
from repro.workload.characteristics import COMPUTE_PHASE, MEMORY_PHASE


@pytest.fixture(scope="module")
def sensors() -> VirtualSensorModel:
    return train_virtual_sensors(TABLE2_TYPES, n_synthetic=150)


class TestHiddenFeatures:
    def test_minimal_set_hides_event_counters(self):
        hidden = hidden_features(MINIMAL_OBSERVED)
        assert "mr_l1d" in hidden
        assert "mr_b" in hidden
        assert "ipc_src" not in hidden
        assert "const" not in hidden

    def test_always_known_excluded(self):
        for name in ALWAYS_KNOWN:
            assert name not in hidden_features(MINIMAL_OBSERVED)

    def test_unknown_feature_rejected(self):
        with pytest.raises(ValueError, match="unknown feature"):
            hidden_features(["mr_l1d", "banana"])

    def test_full_observation_hides_nothing(self):
        everything = [n for n in FEATURE_NAMES if n not in ALWAYS_KNOWN]
        assert hidden_features(everything) == ()


class TestTraining:
    def test_covers_all_types_and_features(self, sensors):
        for core_type in TABLE2_TYPES:
            for name in sensors.hidden:
                assert (core_type.name, name) in sensors.coefficients

    def test_nothing_to_reconstruct_rejected(self):
        everything = [n for n in FEATURE_NAMES if n not in ALWAYS_KNOWN]
        with pytest.raises(ValueError, match="nothing to reconstruct"):
            train_virtual_sensors(TABLE2_TYPES, observed=everything)

    def test_tiny_corpus_rejected(self):
        with pytest.raises(ValueError, match="too small"):
            train_virtual_sensors(
                TABLE2_TYPES, phases=[COMPUTE_PHASE] * 3
            )

    def test_overlapping_observed_hidden_rejected(self):
        with pytest.raises(ValueError, match="observed and hidden"):
            VirtualSensorModel(
                observed=("ipc_src",),
                hidden=("ipc_src",),
                coefficients={},
                fit_error={},
            )


class TestReconstruction:
    def test_observed_entries_preserved(self, sensors):
        features = profile_phase(MEMORY_PHASE, BIG)
        sparse = sparsify(features, MINIMAL_OBSERVED)
        full = sensors.reconstruct(BIG, sparse)
        for name in MINIMAL_OBSERVED:
            index = FEATURE_NAMES.index(name)
            assert full[index] == sparse[index]

    def test_hidden_entries_filled(self, sensors):
        features = profile_phase(MEMORY_PHASE, BIG)
        sparse = sparsify(features, MINIMAL_OBSERVED)
        full = sensors.reconstruct(BIG, sparse)
        l1d = FEATURE_NAMES.index("mr_l1d")
        assert sparse[l1d] == 0.0
        assert full[l1d] > 0.0

    def test_reconstruction_nonnegative(self, sensors):
        for phase in (COMPUTE_PHASE, MEMORY_PHASE):
            sparse = sparsify(profile_phase(phase, HUGE), MINIMAL_OBSERVED)
            assert np.all(sensors.reconstruct(HUGE, sparse) >= 0.0)

    def test_wrong_shape_rejected(self, sensors):
        with pytest.raises(ValueError, match="feature vector"):
            sensors.reconstruct(BIG, np.ones(3))

    def test_unknown_type_rejected(self, sensors):
        from repro.hardware.features import ARM_BIG

        sparse = sparsify(profile_phase(MEMORY_PHASE, BIG), MINIMAL_OBSERVED)
        with pytest.raises(KeyError, match="no reconstructor"):
            sensors.reconstruct(ARM_BIG, sparse)


class TestEndToEndAccuracy:
    def test_predictor_degrades_gracefully(self, sensors):
        """The headline claim of Section 6.4: a minimal counter set
        still supports useful prediction.  Error with 4 physical
        counters must stay within 2x of the full 10-counter error."""
        model = default_predictor()
        full_errs, sparse_errs = [], []
        for phase in (COMPUTE_PHASE, MEMORY_PHASE):
            for src in TABLE2_TYPES:
                features = profile_phase(phase, src)
                reconstructed = sensors.reconstruct(
                    src, sparsify(features, MINIMAL_OBSERVED)
                )
                for dst in TABLE2_TYPES:
                    if dst.name == src.name:
                        continue
                    truth = microarch.estimate(phase, dst).ipc
                    full_errs.append(
                        abs(model.predict_ipc(src.name, dst.name, features) - truth)
                        / truth
                    )
                    sparse_errs.append(
                        abs(
                            model.predict_ipc(src.name, dst.name, reconstructed)
                            - truth
                        )
                        / truth
                    )
        full = float(np.mean(full_errs))
        sparse = float(np.mean(sparse_errs))
        assert sparse < max(2.0 * full, 0.2)
