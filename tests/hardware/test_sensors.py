"""Tests for the noisy sensing interface."""

import random

import pytest

from repro.hardware import microarch
from repro.hardware.counters import CounterBlock
from repro.hardware.features import BIG
from repro.hardware.sensors import IDEAL_NOISE, NoiseModel, SensingInterface
from repro.workload.characteristics import COMPUTE_PHASE


def charged_block() -> CounterBlock:
    block = CounterBlock()
    perf = microarch.estimate(COMPUTE_PHASE, BIG)
    block.charge_execution(perf, BIG, 0.01, 0.3, 0.1)
    return block


class TestNoiseModel:
    def test_zero_sigma_is_identity(self):
        rng = random.Random(0)
        assert IDEAL_NOISE.apply(42.0, rng) == 42.0

    def test_zero_value_stays_zero(self):
        rng = random.Random(0)
        assert NoiseModel(sigma=0.5).apply(0.0, rng) == 0.0

    def test_noise_bounded_by_clip(self):
        model = NoiseModel(sigma=0.5, clip=0.2)
        rng = random.Random(1)
        for _ in range(500):
            reading = model.apply(100.0, rng)
            assert 80.0 <= reading <= 120.0

    def test_noise_unbiased(self):
        model = NoiseModel(sigma=0.05)
        rng = random.Random(2)
        readings = [model.apply(100.0, rng) for _ in range(4000)]
        assert sum(readings) / len(readings) == pytest.approx(100.0, rel=0.01)

    def test_invalid_sigma_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(sigma=-0.1)

    def test_invalid_clip_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(clip=1.5)


class TestSensingInterface:
    def test_deterministic_for_seed(self):
        block = charged_block()
        a = SensingInterface(seed=7).read_counters(block)
        b = SensingInterface(seed=7).read_counters(block)
        assert a.instructions == b.instructions
        assert a.l1d_misses == b.l1d_misses

    def test_different_seeds_differ(self):
        block = charged_block()
        a = SensingInterface(seed=1).read_counters(block)
        b = SensingInterface(seed=2).read_counters(block)
        assert a.instructions != b.instructions

    def test_ideal_sensor_passthrough(self):
        block = charged_block()
        sensing = SensingInterface(
            counter_noise=IDEAL_NOISE, power_noise=IDEAL_NOISE
        )
        noisy = sensing.read_counters(block)
        assert noisy.instructions == block.instructions
        assert sensing.read_power(3.2) == 3.2

    def test_read_does_not_mutate_source(self):
        block = charged_block()
        before = block.instructions
        SensingInterface(seed=3).read_counters(block)
        assert block.instructions == before

    def test_busy_time_read_exactly(self):
        """Timing is kernel bookkeeping, not a noisy hardware counter."""
        block = charged_block()
        noisy = SensingInterface(seed=4).read_counters(block)
        assert noisy.busy_time_s == block.busy_time_s

    def test_power_reading_non_negative(self):
        sensing = SensingInterface(seed=5)
        for _ in range(100):
            assert sensing.read_power(0.001) >= 0.0

    def test_noise_is_relative(self):
        block = charged_block()
        noisy = SensingInterface(seed=6).read_counters(block)
        assert noisy.instructions == pytest.approx(block.instructions, rel=0.3)


# ----------------------------------------------------------------------
# Property tests (hypothesis)
# ----------------------------------------------------------------------

from hypothesis import given, settings, strategies as st


class TestNoiseModelProperties:
    @given(
        value=st.floats(min_value=0.0, max_value=1e12),
        sigma=st.floats(min_value=0.0, max_value=2.0),
        clip=st.floats(min_value=0.01, max_value=0.99),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=200)
    def test_reading_bounded_by_clip(self, value, sigma, clip, seed):
        model = NoiseModel(sigma=sigma, clip=clip)
        reading = model.apply(value, random.Random(seed))
        assert (1.0 - clip) * value <= reading <= (1.0 + clip) * value

    @given(
        value=st.floats(min_value=0.0, max_value=1e12),
        sigma=st.floats(min_value=0.0, max_value=2.0),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=200)
    def test_reading_never_negative(self, value, sigma, seed):
        reading = NoiseModel(sigma=sigma).apply(value, random.Random(seed))
        assert reading >= 0.0

    @given(
        value=st.floats(min_value=0.0, max_value=1e12),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=100)
    def test_zero_sigma_is_exact_passthrough(self, value, seed):
        assert NoiseModel(sigma=0.0).apply(value, random.Random(seed)) == value


class TestCycleIdentityRepair:
    @given(
        busy_s=st.floats(min_value=1e-4, max_value=0.06),
        sigma=st.floats(min_value=0.0, max_value=0.3),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=100)
    def test_cycle_counters_preserve_total(self, busy_s, sigma, seed):
        """Independent noise draws must not mint or destroy cycles:
        the read-out rescales the three cycle counters so their sum
        matches the true total, keeping derived utilisation in [0, 1]."""
        block = CounterBlock()
        perf = microarch.estimate(COMPUTE_PHASE, BIG)
        block.charge_execution(perf, BIG, busy_s, 0.3, 0.1)
        block.cy_idle = 0.25 * block.cy_busy
        block.cy_sleep = 0.10 * block.cy_busy
        sensing = SensingInterface(
            counter_noise=NoiseModel(sigma=sigma), seed=seed
        )
        noisy = sensing.read_counters(block)
        true_total = block.cy_busy + block.cy_idle + block.cy_sleep
        noisy_total = noisy.cy_busy + noisy.cy_idle + noisy.cy_sleep
        assert noisy_total == pytest.approx(true_total, rel=1e-9)
        share = noisy.cy_busy / noisy_total
        assert 0.0 <= share <= 1.0
