"""Hashable fleet descriptions: the cluster-level analogue of RunSpec.

A :class:`FleetSpec` pins down one fleet run completely — node
platforms, the request stream, the routing policy, membership timing
and the fault scenario — using only strings and scalars, exactly like
:class:`~repro.runner.spec.RunSpec` does one level down.  Everything a
fleet run does derives from this spec plus its ``seed``: the arrival
process, each request's workload identity, the fault schedule, the
backoff jitter.  Same spec, same seed ⇒ byte-identical fleet trace
(the chaos determinism suite pins this).

Requests draw their identity from a small pool of ``distinct_jobs``
slots.  Each slot is one (workload, derived seed) pair, and request
``i`` occupies slot ``i % distinct_jobs`` — so the *profile* phase
(which executes each slot on each distinct node platform through the
sweep engine) stays cheap and dedup-friendly while the request stream
can be arbitrarily long.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import random
from dataclasses import dataclass
from typing import Optional

from repro.runner.spec import RunSpec, stable_hash

#: Routing policies the dispatcher can run (see :mod:`repro.fleet.router`).
POLICIES = ("energy", "round_robin", "least_loaded")


def _derive(seed: int, *salt: object) -> int:
    """31-bit deterministic sub-seed from ``seed`` and a salt tuple."""
    blob = json.dumps([seed, *salt], sort_keys=True, separators=(",", ":"))
    digest = hashlib.sha256(blob.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


@dataclass(frozen=True)
class FleetJob:
    """One request of the fleet's arrival stream."""

    #: Stable request id (``r0001`` ...), in arrival order.
    job_id: str
    #: Virtual arrival time (seconds since fleet start).
    arrival_s: float
    #: Identity slot the request occupies (see module docstring).
    slot: int
    workload: str
    #: Seed of the request's own simulation.
    seed: int

    def runspec(self, platform: str, spec: "FleetSpec") -> RunSpec:
        """The node-level job this request becomes on ``platform``."""
        return RunSpec(
            workload=self.workload,
            platform=platform,
            threads=spec.threads,
            balancer=spec.balancer,
            n_epochs=spec.n_epochs,
            seed=self.seed,
        )


@dataclass(frozen=True)
class FleetSpec:
    """One complete fleet run: cluster, traffic, policy, faults."""

    #: Platform name per node (heterogeneous fleets list different
    #: names); length is the fleet size.
    nodes: "tuple[str, ...]" = ("quad", "biglittle", "quad", "biglittle")
    #: Requests in the arrival stream.
    n_requests: int = 16
    #: Workload names the request slots cycle through.
    workloads: "tuple[str, ...]" = ("MTMI", "HTHI", "LTLI")
    #: Distinct (workload, seed) identities in the request pool.
    distinct_jobs: int = 6
    #: Per-request simulation sizing (the node-level RunSpec fields).
    threads: int = 4
    n_epochs: int = 4
    balancer: str = "smartbalance"
    #: Mean request arrival rate (Poisson, virtual time).
    arrival_rate_hz: float = 4.0
    #: Fleet seed: arrivals, slot draws, jitter all derive from it.
    seed: int = 0
    #: Routing policy (one of :data:`POLICIES`).
    policy: str = "energy"
    #: Named fleet fault scenario (:mod:`repro.fleet.faults`); None = clean.
    faults: Optional[str] = None
    #: Fault-schedule seed; ``None`` follows ``seed``.
    fault_seed: Optional[int] = None
    #: ``simulated`` profiles each request slot on each node platform
    #: through the real sense→predict→balance simulator (the runner);
    #: ``analytic`` uses a closed-form stand-in (fast unit tests).
    profile: str = "simulated"
    # -- membership / failure detection --------------------------------
    #: Heartbeat + telemetry cadence of every node agent.
    heartbeat_s: float = 0.25
    #: Consecutive missed heartbeats before a node is SUSPECT.
    suspect_after: int = 2
    #: Consecutive missed heartbeats before a node is DOWN.
    dead_after: int = 4
    #: Fraction of nodes with fresh telemetry below which the router
    #: degrades to round-robin placement.
    quorum: float = 0.5
    # -- retry / hedging / circuit breaking -----------------------------
    #: Dispatch attempts per job (first try + rescues/hedges).
    max_attempts: int = 4
    #: First retry backoff; doubles per attempt, plus seeded jitter.
    retry_base_s: float = 0.1
    #: Hedge a dispatched job once it is this many times older than its
    #: expected completion.
    hedge_factor: float = 3.0
    #: Consecutive dispatch failures that open a node's circuit breaker.
    circuit_threshold: int = 2
    #: Seconds an open breaker refuses dispatches before half-opening.
    circuit_cooldown_s: float = 2.0
    #: Telemetry readings outside ``nominal / bound .. nominal * bound``
    #: are rejected as corrupt (last-good value used instead).
    telemetry_bound: float = 5.0
    #: Staleness discount per heartbeat interval of telemetry age.
    staleness_discount: float = 0.75

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ValueError("fleet needs at least one node")
        if self.n_requests < 1:
            raise ValueError(f"n_requests must be >= 1, got {self.n_requests}")
        if not self.workloads:
            raise ValueError("fleet needs at least one workload")
        if self.distinct_jobs < 1:
            raise ValueError(
                f"distinct_jobs must be >= 1, got {self.distinct_jobs}"
            )
        if self.arrival_rate_hz <= 0:
            raise ValueError(
                f"arrival_rate_hz must be positive, got {self.arrival_rate_hz}"
            )
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r}; use one of {POLICIES}"
            )
        if self.profile not in ("simulated", "analytic"):
            raise ValueError(
                f"profile must be 'simulated' or 'analytic', got {self.profile!r}"
            )
        if self.heartbeat_s <= 0:
            raise ValueError(f"heartbeat_s must be positive, got {self.heartbeat_s}")
        if not 1 <= self.suspect_after < self.dead_after:
            raise ValueError(
                "need 1 <= suspect_after < dead_after, got "
                f"{self.suspect_after} / {self.dead_after}"
            )
        if not 0.0 <= self.quorum <= 1.0:
            raise ValueError(f"quorum must be in [0, 1], got {self.quorum}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.hedge_factor <= 1.0:
            raise ValueError(f"hedge_factor must exceed 1, got {self.hedge_factor}")
        if self.circuit_threshold < 1:
            raise ValueError(
                f"circuit_threshold must be >= 1, got {self.circuit_threshold}"
            )
        if self.telemetry_bound <= 1.0:
            raise ValueError(
                f"telemetry_bound must exceed 1, got {self.telemetry_bound}"
            )
        if not 0.0 < self.staleness_discount <= 1.0:
            raise ValueError(
                "staleness_discount must be in (0, 1], got "
                f"{self.staleness_discount}"
            )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def canonical(self) -> dict:
        """JSON-ready canonical form (the hashed identity)."""
        return dataclasses.asdict(self)

    def fleet_key(self) -> str:
        """Stable hash of the complete fleet identity."""
        return stable_hash({"fleet": self.canonical()})

    def label(self) -> str:
        parts = [
            f"{len(self.nodes)}n",
            "/".join(sorted(set(self.nodes))),
            f"r{self.n_requests}",
            self.policy,
        ]
        if self.faults:
            parts.append(f"faults={self.faults}")
        parts.append(f"seed={self.seed}")
        return ":".join(parts)

    # ------------------------------------------------------------------
    # Derived, deterministic structure
    # ------------------------------------------------------------------

    @property
    def platforms(self) -> "tuple[str, ...]":
        """Distinct node platforms, sorted (the profile axis)."""
        return tuple(sorted(set(self.nodes)))

    def slot_identity(self, slot: int) -> "tuple[str, int]":
        """The (workload, seed) identity of one request slot."""
        workload = self.workloads[slot % len(self.workloads)]
        return workload, _derive(self.seed, "slot", slot, workload)

    def jobs(self) -> "list[FleetJob]":
        """The full request stream, in arrival order.

        Pure function of the spec: Poisson interarrivals drawn from a
        private RNG seeded off the fleet seed (through the shared
        :func:`repro.workload.arrivals.poisson_process`, whose draw
        order matches the loop that used to live here — the fleet
        digest regression test pins this), identities from
        :meth:`slot_identity`.
        """
        from repro.workload.arrivals import poisson_process

        rng = random.Random(_derive(self.seed, "arrivals"))
        times = poisson_process(rng, self.n_requests, self.arrival_rate_hz)
        jobs: "list[FleetJob]" = []
        for index, now in enumerate(times):
            slot = index % self.distinct_jobs
            workload, seed = self.slot_identity(slot)
            jobs.append(
                FleetJob(
                    job_id=f"r{index:04d}",
                    arrival_s=now,
                    slot=slot,
                    workload=workload,
                    seed=seed,
                )
            )
        return jobs

    def profile_specs(self) -> "list[RunSpec]":
        """Every (slot, platform) node-level job of the profile phase,
        in deterministic order."""
        specs: "list[RunSpec]" = []
        for platform in self.platforms:
            for slot in range(self.distinct_jobs):
                workload, seed = self.slot_identity(slot)
                specs.append(
                    RunSpec(
                        workload=workload,
                        platform=platform,
                        threads=self.threads,
                        balancer=self.balancer,
                        n_epochs=self.n_epochs,
                        seed=seed,
                    )
                )
        return specs

    def jitter_rng(self) -> random.Random:
        """Private RNG for retry-backoff jitter (seeded, replayable)."""
        return random.Random(_derive(self.seed, "jitter"))
