"""Node agents: queueing, completion tokens, crash and hang semantics."""

import pytest

from repro.fleet import FleetSpec, NodeAgent, analytic_profiles

SPEC = FleetSpec(profile="analytic")
PROFILES = analytic_profiles(SPEC)
JOBS = SPEC.jobs()


def _agent(node=0):
    return NodeAgent(node, SPEC.nodes[node], PROFILES)


def test_idle_assignment_starts_immediately():
    agent = _agent()
    running = agent.assign(JOBS[0], 1, now=1.0)
    assert running is not None
    assert running.start_s == 1.0
    expected = PROFILES.get(JOBS[0].slot, agent.platform).duration_s
    assert running.done_s == pytest.approx(1.0 + expected)
    assert agent.queue_depth == 1


def test_busy_assignment_queues_fifo():
    agent = _agent()
    first = agent.assign(JOBS[0], 1, now=1.0)
    assert agent.assign(JOBS[1], 1, now=1.1) is None
    assert agent.assign(JOBS[2], 1, now=1.2) is None
    assert agent.queue_depth == 3
    finished, started = agent.complete(first.done_s, first.token)
    assert finished.job is JOBS[0]
    assert started.job is JOBS[1], "FIFO order"
    assert started.start_s == first.done_s
    assert agent.stats.jobs_completed == 1
    assert agent.stats.busy_s == pytest.approx(first.done_s - first.start_s)


def test_stale_token_is_ignored():
    agent = _agent()
    running = agent.assign(JOBS[0], 1, now=1.0)
    assert agent.complete(running.done_s, running.token + 99) is None
    assert agent.running is not None, "job still in flight"


def test_crash_loses_everything():
    agent = _agent()
    agent.assign(JOBS[0], 1, now=1.0)
    agent.assign(JOBS[1], 1, now=1.0)
    token = agent.running.token
    done = agent.running.done_s
    agent.crash()
    assert agent.crashed
    assert agent.queue_depth == 0
    assert agent.complete(done, token) is None, "completions after death drop"
    with pytest.raises(RuntimeError):
        agent.assign(JOBS[2], 1, now=2.0)


def test_hang_shifts_running_job_and_refreshes_token():
    agent = _agent()
    running = agent.assign(JOBS[0], 1, now=1.0)
    old_done, old_token = running.done_s, running.token
    rescheduled = agent.hang(1.05, duration_s=0.5)
    assert rescheduled.done_s == pytest.approx(old_done + 0.5)
    assert rescheduled.token != old_token
    assert agent.complete(old_done, old_token) is None, "old event is stale"
    finished, _ = agent.complete(rescheduled.done_s, rescheduled.token)
    assert finished.job is JOBS[0]
    assert not agent.responsive(1.2)
    assert agent.responsive(1.05 + 0.5)


def test_assignment_during_hang_starts_after_it():
    agent = _agent()
    agent.hang(1.0, duration_s=0.5)
    running = agent.assign(JOBS[0], 1, now=1.2)
    assert running.start_s == pytest.approx(1.5)


def test_telemetry_reflects_load_and_operating_point():
    agent = _agent()
    idle = agent.telemetry(1.0)
    assert not idle.busy and idle.queue_depth == 0
    assert idle.ips_per_watt == PROFILES.nominal_ips_per_watt(agent.platform)
    agent.assign(JOBS[0], 1, now=1.0)
    agent.assign(JOBS[1], 1, now=1.0)
    busy = agent.telemetry(1.1)
    assert busy.busy and busy.queue_depth == 2
    expected = PROFILES.get(JOBS[0].slot, agent.platform).ips_per_watt
    assert busy.ips_per_watt == expected
