"""Joint (allocation, OPP-vector) search strategies.

Two real optimisers behind one interface, plus the ``pinned`` baseline
the experiments compare against:

``two_level``
    Outer search over cluster OPP level vectors, inner Algorithm-1
    annealing per candidate at a reduced iteration budget; the winning
    vector gets a full-budget anneal and the combined adoption gate.

``coupled_anneal``
    One annealing walk over the product space: the move set mixes
    thread swaps (incremental O(1) evaluation) with single-cluster
    OPP steps (full re-evaluation + evaluator rebuild on acceptance).
    Probabilistic primitives (xorshift32, fixed-point ``e^x``, the
    integer acceptance trick) are the same as
    :func:`repro.core.annealing.anneal`.

``pinned``
    Clamp every cluster to one level and run the stock placement
    pipeline there — race-to-idle (top level) and the oracle static
    OPP sweep are both instances of this.

Every strategy returns a :class:`GovernorOutcome`; adoption gates are
applied here so the balancer wrapper only has to translate thread
indices to tids and levels to :class:`~repro.governor.ladder.OppChange`
entries.
"""

from __future__ import annotations

import itertools
import math
import time
from dataclasses import dataclass, replace
from typing import Optional

from repro.core.allocation import Allocation
from repro.core.annealing import SAConfig, SAResult, anneal, default_iteration_cap
from repro.core.fixed_point import Xorshift32, exp_neg
from repro.core.objective import IncrementalEvaluator
from repro.governor.config import GovernorConfig
from repro.governor.scaling import ConditionedObjectiveFactory


@dataclass
class SearchContext:
    """Everything one epoch's joint search needs."""

    factory: ConditionedObjectiveFactory
    ladders: tuple
    incumbent: Allocation
    current_levels: tuple[int, ...]
    #: Number of participating threads (adoption-gate denominator).
    participants: int
    sa_config: SAConfig
    min_improvement: float
    migration_penalty: float
    gov: GovernorConfig
    keep_trace: bool = False


@dataclass
class GovernorOutcome:
    """One epoch's joint decision, pre-gated."""

    #: Adopted thread moves, ``thread index -> core`` (empty = keep).
    changes: dict[int, int]
    sa_result: Optional[SAResult]
    #: Incumbent allocation's value under the *current* OPP vector.
    incumbent_value: float
    #: Adopted level vector (equals the current one when no OPP moved).
    levels: tuple[int, ...]
    #: OPP candidate vectors scored this epoch.
    candidates_evaluated: int
    best_value: float
    adopted_opp: bool


def _required_gain(
    ctx: SearchContext, n_changes: int, n_opp_changed: int
) -> float:
    """The multiplicative adoption threshold.

    The stock churn gate (minimum improvement + per-migration warm-up
    penalty) extended with OPP hysteresis: each switched cluster must
    buy :attr:`GovernorConfig.opp_min_improvement` extra relative gain,
    the decision-side stand-in for the transition dead time.
    """
    return (
        1.0
        + ctx.min_improvement
        + ctx.migration_penalty * n_changes / max(ctx.participants, 1)
        + ctx.gov.opp_min_improvement * n_opp_changed
    )


def _levels_changed(a: "tuple[int, ...]", b: "tuple[int, ...]") -> int:
    return sum(1 for x, y in zip(a, b) if x != y)


def _candidate_levels(ctx: SearchContext) -> "list[tuple[int, ...]]":
    """Deterministic candidate order, incumbent vector first.

    Full cartesian enumeration while the product space is small;
    otherwise the incumbent plus every single-cluster deviation (the
    coordinate-descent neighbourhood).  Listing the incumbent first
    means strict-improvement comparison keeps it on ties.
    """
    current = ctx.current_levels
    n_clusters = len(ctx.ladders)
    if n_clusters == 0:
        return [current]
    n_levels = ctx.ladders[0].n_levels
    candidates = [current]
    if n_levels**n_clusters <= ctx.gov.max_enumeration:
        for combo in itertools.product(range(n_levels), repeat=n_clusters):
            if combo != current:
                candidates.append(combo)
    else:
        for c in range(n_clusters):
            for level in range(n_levels):
                if level != current[c]:
                    variant = list(current)
                    variant[c] = level
                    candidates.append(tuple(variant))
    return candidates


def two_level(ctx: SearchContext) -> GovernorOutcome:
    """Outer OPP enumeration, inner annealing, full anneal on the winner."""
    factory = ctx.factory
    current = ctx.current_levels
    incumbent_value = factory.objective(current).evaluate(ctx.incumbent)

    m, n = factory.ips.shape
    inner_iterations = max(
        1,
        int(default_iteration_cap(n, m) * ctx.gov.inner_iteration_fraction),
    )
    inner_cfg = replace(
        ctx.sa_config, max_iterations=inner_iterations
    )

    best_levels = current
    best_inner = -math.inf
    evaluated = 0
    for levels in _candidate_levels(ctx):
        result = anneal(factory.objective(levels), ctx.incumbent, inner_cfg)
        evaluated += 1
        if result.best_value > best_inner:
            best_inner = result.best_value
            best_levels = levels

    result = anneal(
        factory.objective(best_levels),
        ctx.incumbent,
        ctx.sa_config,
        keep_trace=ctx.keep_trace,
    )
    changes = ctx.incumbent.diff(result.best_allocation)
    n_opp = _levels_changed(best_levels, current)
    required = _required_gain(ctx, len(changes), n_opp)
    if (changes or n_opp) and result.best_value > incumbent_value * required:
        return GovernorOutcome(
            changes=changes,
            sa_result=result,
            incumbent_value=incumbent_value,
            levels=best_levels,
            candidates_evaluated=evaluated,
            best_value=result.best_value,
            adopted_opp=n_opp > 0,
        )
    if best_levels != current:
        # The joint winner failed the gate: fall back to the stock
        # placement-only optimisation at the incumbent OPP vector so a
        # cheap thread shuffle is never held hostage by OPP hysteresis.
        result = anneal(
            factory.objective(current),
            ctx.incumbent,
            ctx.sa_config,
            keep_trace=ctx.keep_trace,
        )
        changes = ctx.incumbent.diff(result.best_allocation)
        evaluated += 1
        required = _required_gain(ctx, len(changes), 0)
        if not (changes and result.best_value > incumbent_value * required):
            changes = {}
    else:
        changes = {}
    return GovernorOutcome(
        changes=changes,
        sa_result=result,
        incumbent_value=incumbent_value,
        levels=current,
        candidates_evaluated=evaluated,
        best_value=result.best_value,
        adopted_opp=False,
    )


def _sa_accept(
    diff: float,
    current: float,
    acceptance: float,
    config: SAConfig,
    rng: Xorshift32,
) -> "tuple[bool, bool]":
    """Algorithm 1's acceptance rule; returns ``(take, was_uphill)``."""
    if diff > 0:
        return True, False
    if diff == 0:
        return True, False
    scale = acceptance * max(abs(current), 1e-30)
    x = min(-diff / scale, 11.0)
    probability = exp_neg(x) if config.use_fixed_point_exp else math.exp(-x)
    if probability > 0:
        inverse = max(int(round(1.0 / probability)), 1)
        if rng.randi() % inverse == 0:
            return True, True
    return False, False


def coupled_anneal(ctx: SearchContext) -> GovernorOutcome:
    """One annealing walk over the joint (allocation, OPP) space."""
    factory = ctx.factory
    config = ctx.sa_config
    current_levels = ctx.current_levels
    incumbent_value = factory.objective(current_levels).evaluate(ctx.incumbent)

    working = ctx.incumbent.copy()
    levels = list(current_levels)
    objective = factory.objective(tuple(levels))
    evaluator = IncrementalEvaluator(objective, working)
    rng = Xorshift32(config.seed)
    total_slots = len(working)
    iterations = config.max_iterations
    if iterations is None:
        iterations = default_iteration_cap(
            objective.n_cores, objective.n_threads
        )

    n_clusters = len(ctx.ladders)
    n_levels = ctx.ladders[0].n_levels if n_clusters else 1
    opp_moves_possible = n_clusters > 0 and n_levels > 1

    perturb = config.initial_perturbation
    acceptance = config.initial_acceptance
    current = evaluator.value
    initial_value = current
    best_value = current
    best_allocation = working.copy()
    best_levels = tuple(levels)
    accepted = 0
    uphill = 0
    truncated = False
    deadline = None
    if config.time_budget_s is not None:
        deadline = time.perf_counter() + config.time_budget_s

    performed = 0
    for _ in range(iterations):
        if deadline is not None and performed % 32 == 0 and performed > 0:
            if time.perf_counter() >= deadline:
                truncated = True
                break
        performed += 1
        opp_move = (
            opp_moves_possible
            and rng.randi() % ctx.gov.opp_move_period == 0
        )
        if opp_move:
            cluster = rng.randi_range(0, n_clusters)
            step = 1 if rng.randi() % 2 == 0 else -1
            new_level = levels[cluster] + step
            if 0 <= new_level < n_levels:
                trial = list(levels)
                trial[cluster] = new_level
                trial_objective = factory.objective(tuple(trial))
                new_value = trial_objective.evaluate(working)
                take, was_uphill = _sa_accept(
                    new_value - current, current, acceptance, config, rng
                )
                if take:
                    levels = trial
                    objective = trial_objective
                    # The running sums are per-objective: rebuild the
                    # O(1) tracker against the new rung's matrices.
                    evaluator = IncrementalEvaluator(objective, working)
                    current = new_value
                    accepted += 1
                    uphill += int(was_uphill)
                    if current > best_value:
                        best_value = current
                        best_allocation = working.copy()
                        best_levels = tuple(levels)
            # An out-of-ladder step is simply a rejected move.
        else:
            pos = rng.randi_range(0, total_slots)
            span = math.sqrt(perturb)
            offset = rng.randi_range(-pos, total_slots - pos)
            pos_new = pos + int(span * offset)
            pos_new = min(max(pos_new, 0), total_slots - 1)
            new_value = evaluator.apply_swap(pos, pos_new)
            take, was_uphill = _sa_accept(
                new_value - current, current, acceptance, config, rng
            )
            if take:
                current = new_value
                accepted += 1
                uphill += int(was_uphill)
                if current > best_value:
                    best_value = current
                    best_allocation = working.copy()
                    best_levels = tuple(levels)
            else:
                evaluator.apply_swap(pos, pos_new)
        perturb *= config.perturbation_decay
        acceptance *= config.acceptance_decay

    sa_result = SAResult(
        best_allocation=best_allocation,
        best_value=best_value,
        initial_value=initial_value,
        iterations=performed,
        accepted_moves=accepted,
        uphill_accepts=uphill,
        truncated=truncated,
    )
    changes = ctx.incumbent.diff(best_allocation)
    n_opp = _levels_changed(best_levels, current_levels)
    required = _required_gain(ctx, len(changes), n_opp)
    if (changes or n_opp) and best_value > incumbent_value * required:
        return GovernorOutcome(
            changes=changes,
            sa_result=sa_result,
            incumbent_value=incumbent_value,
            levels=best_levels,
            candidates_evaluated=len(factory._cache),
            best_value=best_value,
            adopted_opp=n_opp > 0,
        )
    return GovernorOutcome(
        changes={},
        sa_result=sa_result,
        incumbent_value=incumbent_value,
        levels=current_levels,
        candidates_evaluated=len(factory._cache),
        best_value=best_value,
        adopted_opp=False,
    )


def pinned(ctx: SearchContext) -> GovernorOutcome:
    """Clamp every cluster to one rung; stock placement pipeline there.

    The OPP move is adopted unconditionally (the operator pinned it);
    only the thread placement goes through the churn gate.
    """
    assert ctx.gov.pinned_level is not None
    target = tuple(
        min(ctx.gov.pinned_level, ladder.n_levels - 1)
        for ladder in ctx.ladders
    )
    objective = ctx.factory.objective(target)
    incumbent_value = objective.evaluate(ctx.incumbent)
    result = anneal(
        objective, ctx.incumbent, ctx.sa_config, keep_trace=ctx.keep_trace
    )
    changes = ctx.incumbent.diff(result.best_allocation)
    required = _required_gain(ctx, len(changes), 0)
    if not (changes and result.best_value > incumbent_value * required):
        changes = {}
    return GovernorOutcome(
        changes=changes,
        sa_result=result,
        incumbent_value=incumbent_value,
        levels=target,
        candidates_evaluated=1,
        best_value=result.best_value,
        adopted_opp=target != ctx.current_levels,
    )


STRATEGIES = {
    "two_level": two_level,
    "coupled_anneal": coupled_anneal,
    "pinned": pinned,
}
