"""Typed event catalogue of the observability subsystem.

Every event a :class:`~repro.obs.tracer.Tracer` records is a flat JSON
object with two universal fields — ``type`` (one of :data:`EVENT_TYPES`)
and ``t_s`` (the *simulated* time it happened at, seconds) — plus the
per-type payload described in :data:`EVENT_SCHEMA`.  Keeping the schema
as data rather than classes means a trace written by one version can be
validated and rendered by another, and the JSONL files stay greppable.

Timestamps are simulation time on purpose: wall-clock durations live in
the metrics registry's timing section and in the single
``phase_profile`` summary event, so the rest of the stream is
bit-deterministic for a given :class:`~repro.runner.spec.RunSpec` (the
determinism suite compares streams with
:func:`deterministic_events`).
"""

from __future__ import annotations

from numbers import Number
from typing import Iterable

# ---------------------------------------------------------------------------
# Event types
# ---------------------------------------------------------------------------

#: Lifecycle of a run.
RUN_START = "run_start"
RUN_END = "run_end"
#: Metrics-epoch boundaries (independent of the balancer interval).
EPOCH_START = "epoch_start"
EPOCH_END = "epoch_end"
#: An epoch whose energy accounting is degenerate (``energy_j <= 0``):
#: its ``ips_per_watt`` is meaningless and must not be averaged in.
DEGENERATE_EPOCH = "degenerate_epoch"
#: One sense phase: what the balancer observed and what it trusted.
SENSE = "sense"
#: Last epoch's per-thread prediction checked against this epoch's
#: realised measurement (the Table 4 accuracy data).
PREDICTION_CHECK = "prediction_check"
#: One simulated-annealing run (Algorithm 1) with a sampled trace.
ANNEAL = "anneal"
#: Outcome of one sense→predict→balance pass.
DECISION = "decision"
#: One applied thread migration, with its cause.
MIGRATION = "migration"
#: One fault the injection layer actually delivered.
FAULT_INJECTED = "fault_injected"
#: One defensive action of the graceful-degradation layer.
MITIGATION = "mitigation"
#: A state transition of the degradation machinery (watchdog).
DEGRADATION = "degradation"
#: A per-pair prediction-error drift detector fired (adaptation layer).
DRIFT_DETECTED = "drift_detected"
#: The adaptation layer committed and activated a re-fitted model.
MODEL_UPDATE = "model_update"
#: A committed model failed probation and was rolled back.
MODEL_ROLLBACK = "model_rollback"
#: Governor tier: one applied per-cluster operating-point change.
OPP_CHANGE = "opp_change"
#: Governor tier: outcome of one joint (allocation, OPP-vector) search.
GOVERNOR_DECISION = "governor_decision"
#: Wall-clock per-phase time breakdown (one per run; nondeterministic).
PHASE_PROFILE = "phase_profile"
#: Fleet tier: a node joined (or rejoined) the membership view.
NODE_UP = "node_up"
#: Fleet tier: the failure detector declared a node dead.
NODE_DOWN = "node_down"
#: Fleet tier: one heartbeat interval elapsed without a heartbeat.
HEARTBEAT_MISSED = "heartbeat_missed"
#: Fleet tier: a job was moved off its assigned node (rescue / hedge /
#: circuit avoidance).
REROUTE = "reroute"
#: Fleet tier: a node's circuit breaker opened (dispatches suspended).
CIRCUIT_OPEN = "circuit_open"
#: Fleet tier: a node's circuit breaker closed again after a probe.
CIRCUIT_CLOSE = "circuit_close"
#: Fleet tier: the dispatcher placed one job on one node.
FLEET_DISPATCH = "fleet_dispatch"
#: Fleet tier: a node reported one job finished (possibly a duplicate
#: of an already-completed hedged job).
FLEET_COMPLETE = "fleet_complete"
#: Scenario tier: an open-loop request thread became runnable.
REQUEST_ARRIVED = "request_arrived"
#: Scenario tier: an open-loop request finished, with its latency and
#: SLO verdict.
REQUEST_COMPLETED = "request_completed"
#: Scenario tier: one barrier release, with the group's summed stall.
BARRIER_STALL = "barrier_stall"

EVENT_TYPES = (
    RUN_START,
    RUN_END,
    EPOCH_START,
    EPOCH_END,
    DEGENERATE_EPOCH,
    SENSE,
    PREDICTION_CHECK,
    ANNEAL,
    DECISION,
    MIGRATION,
    FAULT_INJECTED,
    MITIGATION,
    DEGRADATION,
    DRIFT_DETECTED,
    MODEL_UPDATE,
    MODEL_ROLLBACK,
    OPP_CHANGE,
    GOVERNOR_DECISION,
    PHASE_PROFILE,
    NODE_UP,
    NODE_DOWN,
    HEARTBEAT_MISSED,
    REROUTE,
    CIRCUIT_OPEN,
    CIRCUIT_CLOSE,
    FLEET_DISPATCH,
    FLEET_COMPLETE,
    REQUEST_ARRIVED,
    REQUEST_COMPLETED,
    BARRIER_STALL,
)

#: Event types whose payload depends only on the simulation (never on
#: the host's wall clock); these must be byte-identical across runs of
#: the same spec.
DETERMINISTIC_TYPES = tuple(t for t in EVENT_TYPES if t != PHASE_PROFILE)

#: Kinds a ``fault_injected`` event may carry.  The ``node_*`` /
#: ``telemetry_*`` kinds are cluster-level faults delivered by the
#: fleet fault layer (:mod:`repro.fleet.faults`); the rest are the
#: intra-node faults of :mod:`repro.faults`.
FAULT_KINDS = (
    "sensor_dropout",
    "sensor_stuck",
    "sensor_spike",
    "counter_wrap",
    "counter_saturation",
    "migration_lost",
    "migration_delayed",
    "hotplug",
    "throttle",
    "node_crash",
    "node_hang",
    "node_partition",
    "telemetry_stale",
    "telemetry_corrupt",
)

#: Kinds a ``mitigation`` event may carry.  The last group is the
#: fleet dispatcher's defence ledger (telemetry sanity checks,
#: last-good fallback, quorum degradation, hedged re-dispatch).
MITIGATION_KINDS = (
    "sample_rejected",
    "fallback_row",
    "thread_dropped",
    "rebaseline",
    "watchdog_fallback",
    "budget_skip",
    "sa_truncated",
    "hotplug_mask",
    "offline_placement_blocked",
    "telemetry_rejected",
    "stale_fallback",
    "quorum_degraded",
    "hedged_dispatch",
    "duplicate_suppressed",
)

#: Known causes of a thread migration.
MIGRATION_CAUSES = ("balancer", "hotplug", "fault_delay")

# ---------------------------------------------------------------------------
# Schema: required / optional payload fields per type
# ---------------------------------------------------------------------------

#: ``type -> (required fields, optional fields)`` beyond the universal
#: ``type`` and ``t_s``.
EVENT_SCHEMA: "dict[str, tuple[tuple[str, ...], tuple[str, ...]]]" = {
    RUN_START: (
        ("balancer", "platform", "n_tasks", "n_cores"),
        ("core_types", "seed", "faults"),
    ),
    RUN_END: (
        ("duration_s", "instructions", "energy_j", "migrations"),
        ("ips_per_watt",),
    ),
    EPOCH_START: (("epoch",), ()),
    EPOCH_END: (
        ("epoch", "duration_s", "instructions", "energy_j", "migrations"),
        ("ips_per_watt", "degenerate", "per_core"),
    ),
    DEGENERATE_EPOCH: (("epoch", "duration_s", "instructions"), ("energy_j",)),
    SENSE: (
        ("epoch", "window_s", "threads", "measured", "healthy", "rejected"),
        ("fallback_rows",),
    ),
    PREDICTION_CHECK: (
        (
            "tid",
            "src_type",
            "dst_type",
            "core",
            "predicted_ips",
            "measured_ips",
            "ipc_abs_pct_error",
        ),
        ("predicted_power_w", "measured_power_w", "power_abs_pct_error"),
    ),
    ANNEAL: (
        (
            "epoch",
            "iterations",
            "accepted",
            "uphill",
            "truncated",
            "initial_value",
            "best_value",
        ),
        ("improvement_pct", "samples"),
    ),
    DECISION: (
        ("epoch", "migrations", "fallback", "rejected"),
        ("incumbent_value", "best_value"),
    ),
    MIGRATION: (("tid", "from_core", "to_core", "cause"), ()),
    FAULT_INJECTED: (
        ("kind",),
        ("channel", "tid", "core", "count", "detail", "node"),
    ),
    MITIGATION: (("kind", "cause"), ("tid", "core", "node", "job")),
    DEGRADATION: (("state", "cause"), ()),
    DRIFT_DETECTED: (
        ("pair", "statistic", "threshold"),
        ("epoch", "samples", "opp_bin"),
    ),
    MODEL_UPDATE: (
        ("version", "cause", "pairs_updated"),
        (
            "epoch",
            "fingerprint",
            "holdout_error_before_pct",
            "holdout_error_after_pct",
            "power_types_updated",
        ),
    ),
    MODEL_ROLLBACK: (
        ("from_version", "to_version", "cause"),
        ("epoch", "fingerprint"),
    ),
    OPP_CHANGE: (
        ("cluster", "from_freq_mhz", "to_freq_mhz"),
        (
            "epoch",
            "from_level",
            "to_level",
            "from_vdd",
            "to_vdd",
            "cores",
            "transition_latency_s",
            "transition_energy_j",
        ),
    ),
    GOVERNOR_DECISION: (
        ("epoch", "strategy", "opp_levels"),
        (
            "candidates_evaluated",
            "opp_changes",
            "incumbent_value",
            "best_value",
            "transition_energy_j",
            "adopted",
        ),
    ),
    PHASE_PROFILE: (("phases",), ()),
    NODE_UP: (("node",), ("platform", "detail")),
    NODE_DOWN: (("node", "cause"), ("jobs_rescued",)),
    HEARTBEAT_MISSED: (("node", "misses"), ()),
    REROUTE: (("job", "to_node", "cause"), ("from_node", "attempt")),
    CIRCUIT_OPEN: (("node",), ("failures", "cooldown_s")),
    CIRCUIT_CLOSE: (("node",), ("probe_job",)),
    FLEET_DISPATCH: (
        ("job", "node", "attempt"),
        ("policy", "queue_depth", "degraded"),
    ),
    FLEET_COMPLETE: (
        ("job", "node"),
        ("attempt", "duplicate", "latency_s"),
    ),
    REQUEST_ARRIVED: (("tid",), ("name",)),
    REQUEST_COMPLETED: (
        ("tid", "latency_s"),
        ("slo_s", "slo_miss", "name"),
    ),
    BARRIER_STALL: (("group", "barrier"), ("stall_s", "waiters")),
}


def validate_event(event: object) -> "str | None":
    """Check one event against the schema; returns the error or None."""
    if not isinstance(event, dict):
        return f"event must be an object, got {type(event).__name__}"
    etype = event.get("type")
    if etype not in EVENT_SCHEMA:
        return f"unknown event type {etype!r}"
    t_s = event.get("t_s")
    if not isinstance(t_s, Number) or isinstance(t_s, bool) or t_s < 0:
        return f"{etype}: t_s must be a non-negative number, got {t_s!r}"
    required, optional = EVENT_SCHEMA[etype]
    missing = [name for name in required if name not in event]
    if missing:
        return f"{etype}: missing required field(s) {missing}"
    allowed = {"type", "t_s", *required, *optional}
    unknown = [name for name in event if name not in allowed]
    if unknown:
        return f"{etype}: unknown field(s) {unknown}"
    if etype == FAULT_INJECTED and event["kind"] not in FAULT_KINDS:
        return f"{etype}: unknown kind {event['kind']!r}"
    if etype == MITIGATION:
        if event["kind"] not in MITIGATION_KINDS:
            return f"{etype}: unknown kind {event['kind']!r}"
        if not isinstance(event["cause"], str) or not event["cause"]:
            return f"{etype}: cause must be a non-empty string"
    if etype == MIGRATION and not isinstance(event["cause"], str):
        return f"{etype}: cause must be a string"
    return None


def validate_events(events: Iterable[object]) -> "list[str]":
    """Validate a stream; returns one ``line N: error`` entry per bad
    event (empty list = schema-clean)."""
    errors = []
    for index, event in enumerate(events):
        error = validate_event(event)
        if error is not None:
            errors.append(f"event {index}: {error}")
    return errors


def deterministic_events(events: Iterable[dict]) -> "list[dict]":
    """The sub-stream that must be identical across reruns of a spec."""
    return [e for e in events if e.get("type") in DETERMINISTIC_TYPES]
