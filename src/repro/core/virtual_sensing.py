"""Sparse virtual sensing (paper Section 6.4, reference [24]).

The paper acknowledges that needing ~10 counters plus per-core power
sensors "may be viewed as a serious limitation on certain
architectures" and points to *sparse virtual sensing* — estimating the
full sensor set from a minimal physical subset — as the mitigation.

This module implements that extension: a per-core-type linear
reconstructor that estimates the *hidden* counter-derived rates from a
small set of *physically observed* ones.  A platform with only the
basic cycle/instruction counters (IPC, stall fraction, instruction-mix
shares are derivable from three hardware counters plus the cycle
counters every core has) can then still feed SmartBalance's Θ
predictor, paying some accuracy for much cheaper hardware.

The ``virtual_sensing`` benchmark quantifies the trade: predictor
error as a function of how many physical counters the platform
provides.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.estimation import FEATURE_NAMES
from repro.core.training import profile_phase
from repro.hardware.features import CoreType
from repro.hardware.sensors import NoiseModel
from repro.workload.characteristics import WorkloadPhase
from repro.workload.generator import training_corpus

#: Features that are never reconstructed: the core frequency is static
#: platform knowledge and the intercept is a constant.
ALWAYS_KNOWN = ("freq_mhz", "const")

#: Rates derivable from the basic counters every core has (cycle and
#: committed-instruction counters): the minimal physical set.
MINIMAL_OBSERVED = ("ipc_src", "stall_frac", "i_msh", "i_bsh")


@dataclass(frozen=True)
class VirtualSensorModel:
    """Linear reconstructor of hidden counter rates.

    ``coefficients[(type_name, hidden_feature)]`` maps the observed
    sub-vector (plus intercept) to one hidden feature's estimate.
    """

    observed: tuple[str, ...]
    hidden: tuple[str, ...]
    coefficients: dict[tuple[str, str], np.ndarray]
    #: Mean absolute reconstruction error per hidden feature (training).
    fit_error: dict[str, float]

    def __post_init__(self) -> None:
        overlap = set(self.observed) & set(self.hidden)
        if overlap:
            raise ValueError(f"features cannot be both observed and hidden: {overlap}")

    def reconstruct(
        self, core_type: CoreType, sparse_features: np.ndarray
    ) -> np.ndarray:
        """Rebuild a full feature vector from sparse readings.

        ``sparse_features`` is a full-length feature vector in the
        canonical order whose *hidden* entries are ignored (typically
        zero); the returned copy has them replaced by reconstructions.
        """
        sparse_features = np.asarray(sparse_features, dtype=float)
        if sparse_features.shape != (len(FEATURE_NAMES),):
            raise ValueError(
                f"expected a {len(FEATURE_NAMES)}-feature vector, got "
                f"shape {sparse_features.shape}"
            )
        design = self._design(sparse_features)
        full = sparse_features.copy()
        for name in self.hidden:
            key = (core_type.name, name)
            try:
                coeffs = self.coefficients[key]
            except KeyError:
                raise KeyError(
                    f"no reconstructor for feature {name!r} on core type "
                    f"{core_type.name!r}"
                ) from None
            index = FEATURE_NAMES.index(name)
            full[index] = max(float(np.dot(coeffs, design)), 0.0)
        return full

    def _design(self, features: np.ndarray) -> np.ndarray:
        values = [features[FEATURE_NAMES.index(name)] for name in self.observed]
        return np.array(values + [1.0])


def hidden_features(observed: Sequence[str]) -> tuple[str, ...]:
    """The features a platform with ``observed`` counters must estimate."""
    known = set(observed) | set(ALWAYS_KNOWN)
    unknown_names = [n for n in observed if n not in FEATURE_NAMES]
    if unknown_names:
        raise ValueError(
            f"unknown feature names {unknown_names}; valid: {FEATURE_NAMES}"
        )
    return tuple(n for n in FEATURE_NAMES if n not in known)


def train_virtual_sensors(
    core_types: Sequence[CoreType],
    observed: Sequence[str] = MINIMAL_OBSERVED,
    phases: Optional[Sequence[WorkloadPhase]] = None,
    n_synthetic: int = 300,
    seed: int = 17,
    noise: Optional[NoiseModel] = NoiseModel(sigma=0.01),
) -> VirtualSensorModel:
    """Fit per-type reconstructors on an offline profiling corpus.

    Mirrors the Θ training pipeline: profile each corpus phase on each
    core type, then least-squares fit each hidden rate from the
    observed sub-vector.
    """
    observed = tuple(observed)
    hidden = hidden_features(observed)
    if not hidden:
        raise ValueError("nothing to reconstruct: all features observed")
    if phases is None:
        from repro.core.training import parsec_training_corpus

        corpus = parsec_training_corpus(n_seeds=3) + training_corpus(n_synthetic, seed)
    else:
        corpus = list(phases)
    if len(corpus) < 5 * (len(observed) + 1):
        raise ValueError(
            f"corpus of {len(corpus)} phases is too small for "
            f"{len(observed)}-feature reconstructors"
        )
    rng = random.Random(seed)

    coefficients: dict[tuple[str, str], np.ndarray] = {}
    fit_error: dict[str, float] = {}
    errors_by_feature: dict[str, list[float]] = {name: [] for name in hidden}
    observed_idx = [FEATURE_NAMES.index(n) for n in observed]
    for core_type in core_types:
        rows = np.vstack([profile_phase(p, core_type, noise, rng) for p in corpus])
        design = np.column_stack([rows[:, observed_idx], np.ones(len(corpus))])
        for name in hidden:
            target = rows[:, FEATURE_NAMES.index(name)]
            coeffs, *_ = np.linalg.lstsq(design, target, rcond=None)
            coefficients[(core_type.name, name)] = coeffs
            reconstructed = design @ coeffs
            scale = max(float(np.abs(target).mean()), 1e-9)
            errors_by_feature[name].append(
                float(np.abs(reconstructed - target).mean()) / scale
            )
    for name, errs in errors_by_feature.items():
        fit_error[name] = float(np.mean(errs))
    return VirtualSensorModel(
        observed=observed,
        hidden=hidden,
        coefficients=coefficients,
        fit_error=fit_error,
    )


def sparsify(features: np.ndarray, observed: Sequence[str]) -> np.ndarray:
    """Zero the hidden entries of a full feature vector (what a platform
    with only ``observed`` counters would physically produce)."""
    features = np.asarray(features, dtype=float).copy()
    for name in hidden_features(observed):
        features[FEATURE_NAMES.index(name)] = 0.0
    return features
