"""Tests for the sense phase and the Eq. 4-7 estimation identities."""

import pytest

from repro.core.estimation import (
    core_ips_from_counters,
    estimate_cores,
    feature_vector,
)
from repro.core.sensing import sense
from repro.hardware.counters import CounterBlock
from repro.hardware import microarch
from repro.hardware.platform import quad_hmp
from repro.hardware.sensors import NoiseModel
from repro.kernel.balancers.base import NullBalancer
from repro.kernel.simulator import SimulationConfig, System
from repro.workload.characteristics import COMPUTE_PHASE
from repro.workload.synthetic import imb_threads

IDEAL = SimulationConfig(
    counter_noise=NoiseModel(sigma=0.0), power_noise=NoiseModel(sigma=0.0)
)


def sensed_view(n_threads=4, os_tasks=0, n_epochs=2):
    config = SimulationConfig(
        counter_noise=NoiseModel(sigma=0.0),
        power_noise=NoiseModel(sigma=0.0),
        os_noise_tasks=os_tasks,
    )
    system = System(quad_hmp(), imb_threads("MTMI", n_threads), NullBalancer(), config)
    system.run(n_epochs=n_epochs)
    return system, system.build_view(window_s=n_epochs * 0.06)


class TestSense:
    def test_all_user_threads_observed(self):
        _, view = sensed_view(4)
        observation = sense(view)
        assert len(observation.threads) == 4
        assert len(observation.measured_threads) == 4

    def test_kernel_threads_excluded_by_default(self):
        _, view = sensed_view(2, os_tasks=3)
        observation = sense(view)
        assert len(observation.threads) == 2
        included = sense(view, include_kernel_threads=True)
        assert len(included.threads) == 5

    def test_idle_and_sleep_power_vectors(self):
        _, view = sensed_view(2)
        observation = sense(view)
        assert len(observation.idle_power_w) == 4
        assert len(observation.sleep_power_w) == 4
        for idle, sleep in zip(observation.idle_power_w, observation.sleep_power_w):
            assert 0 < sleep < idle

    def test_eq4_ips_identity(self):
        """ips_ij = sum(I) / sum(tau) — verified against ground truth."""
        system, view = sensed_view(4)
        observation = sense(view)
        for obs in observation.measured_threads:
            task = system.tasks[obs.tid]
            expected = task.counters.instructions / task.counters.busy_time_s
            assert obs.ips_measured == pytest.approx(expected, rel=1e-9)

    def test_eq5_power_identity(self):
        """p_ij = sum(energy) / sum(tau)."""
        system, view = sensed_view(4)
        observation = sense(view)
        for obs in observation.measured_threads:
            task = system.tasks[obs.tid]
            expected = task.epoch_energy_j / task.counters.busy_time_s
            assert obs.power_measured == pytest.approx(expected, rel=1e-9)


class TestEstimateCores:
    def test_eq6_eq7_are_member_averages(self):
        _, view = sensed_view(8)
        observation = sense(view)
        estimates = estimate_cores(observation)
        for core_id, estimate in estimates.items():
            members = [
                t for t in observation.measured_threads if t.core_id == core_id
            ]
            assert estimate.n_threads == len(members)
            assert estimate.ips_avg == pytest.approx(
                sum(t.ips_measured for t in members) / len(members)
            )
            assert estimate.power_avg == pytest.approx(
                sum(t.power_measured for t in members) / len(members)
            )

    def test_empty_core_absent(self):
        _, view = sensed_view(2)  # cores 2, 3 have no threads
        estimates = estimate_cores(sense(view))
        assert set(estimates) == {0, 1}


class TestCoreIpsIdentity:
    def test_matches_counter_formula(self):
        """IPS_j = I_total * F / (cyBusy + cyIdle)."""
        from repro.hardware.features import BIG

        block = CounterBlock()
        perf = microarch.estimate(COMPUTE_PHASE, BIG)
        block.charge_execution(perf, BIG, 0.01, 0.3, 0.1)
        ips = core_ips_from_counters(block, BIG)
        assert ips == pytest.approx(perf.ipc * BIG.freq_hz, rel=1e-9)

    def test_zero_for_empty_counters(self):
        from repro.hardware.features import BIG

        assert core_ips_from_counters(CounterBlock(), BIG) == 0.0


class TestFeatureVector:
    def test_matches_observed_rates(self):
        _, view = sensed_view(2)
        observation = sense(view)
        obs = observation.measured_threads[0]
        features = feature_vector(obs)
        assert features[0] == obs.core_type.freq_mhz
        assert features[-3] == pytest.approx(obs.rates.ipc)
        assert features[-2] == pytest.approx(obs.rates.stall_fraction)
        assert features[-1] == 1.0
