"""Cache, TLB and branch-predictor miss-rate models.

The Gem5 platform of the paper provides per-core private L1/L2 caches
and real predictors; SmartBalance only ever observes the resulting
*per-epoch miss rates* through performance counters.  We therefore model
miss rates analytically as smooth functions of the workload footprint
versus the core's structure sizes.  The essential property preserved is
that the same workload sees *different but correlated* miss rates on
different core types — the correlation the paper's Θ predictor (Eq. 8)
learns.

All rates returned are per relevant access:

* data-cache miss rate — per load/store,
* instruction-cache miss rate — per fetched instruction,
* TLB miss rates — per load/store (data) and per instruction (instr),
* branch misprediction rate — per branch instruction.
"""

from __future__ import annotations

import math

from repro.hardware.features import CoreType
from repro.workload.characteristics import WorkloadPhase

#: Saturating miss rate of a pathologically cache-hostile workload.
MAX_DCACHE_MISS_RATE = 0.30
MAX_ICACHE_MISS_RATE = 0.10
#: Scaling of effective capacity: locality lets a cache behave as if it
#: were this many times larger than its nominal size.
DCACHE_REACH_FACTOR = 4.0
ICACHE_REACH_FACTOR = 8.0
#: Fraction of TLB footprint covered per TLB entry (pages).
TLB_PAGES_PER_ENTRY = 1.0
MAX_TLB_MISS_RATE = 0.05
#: Branch misprediction rate of a perfectly unpredictable branch on the
#: weakest predictor.
MAX_BRANCH_MISS_RATE = 0.12


def _capacity_miss(footprint: float, effective_capacity: float, max_rate: float) -> float:
    """Smooth capacity miss-rate curve.

    Zero when the footprint fits; approaches ``max_rate`` as the
    footprint dwarfs the cache.  The curve ``f/(f + c)`` is the standard
    power-law-inspired approximation for LRU caches under a mix of
    reuse distances.
    """
    if footprint <= 0:
        return 0.0
    overflow = max(0.0, footprint - effective_capacity)
    return max_rate * overflow / (overflow + effective_capacity)


def dcache_miss_rate(phase: WorkloadPhase, core: CoreType) -> float:
    """L1 data-cache miss rate (per memory instruction)."""
    effective = core.l1d_kb * DCACHE_REACH_FACTOR * phase.data_locality
    return _capacity_miss(phase.working_set_kb, effective, MAX_DCACHE_MISS_RATE)


def icache_miss_rate(phase: WorkloadPhase, core: CoreType) -> float:
    """L1 instruction-cache miss rate (per instruction)."""
    effective = core.l1i_kb * ICACHE_REACH_FACTOR
    return _capacity_miss(phase.code_footprint_kb, effective, MAX_ICACHE_MISS_RATE)


def dtlb_miss_rate(phase: WorkloadPhase, core: CoreType) -> float:
    """Data-TLB miss rate (per memory instruction).

    TLB reach is ``entries * 4KiB``; the data footprint in pages is the
    working set divided by the page size, inflated for sparse access
    patterns (low locality touches more pages per byte of working set).
    """
    pages = phase.working_set_kb / 4.0 / max(phase.data_locality, 0.1)
    reach = core.dtlb_entries * TLB_PAGES_PER_ENTRY
    return _capacity_miss(pages, reach, MAX_TLB_MISS_RATE)


def itlb_miss_rate(phase: WorkloadPhase, core: CoreType) -> float:
    """Instruction-TLB miss rate (per instruction)."""
    pages = phase.code_footprint_kb / 4.0
    reach = core.itlb_entries * TLB_PAGES_PER_ENTRY
    return _capacity_miss(pages, reach, MAX_TLB_MISS_RATE)


def predictor_quality(core: CoreType) -> float:
    """Branch-predictor quality in ``(0, 1]``.

    Table 2 does not size the predictor explicitly; as in the 21264
    family, predictor capability tracks the front-end width — wider
    cores carry larger history tables.  Quality 1.0 means perfect
    prediction of *predictable* branches; the residual mispredict rate
    for a fully random branch stream is ``MAX_BRANCH_MISS_RATE``.
    """
    return 1.0 - 0.35 / (1.0 + math.log2(2.0 * core.issue_width))


def branch_miss_rate(phase: WorkloadPhase, core: CoreType) -> float:
    """Branch misprediction rate (per branch instruction)."""
    hostility = phase.branch_entropy
    quality = predictor_quality(core)
    return MAX_BRANCH_MISS_RATE * hostility * (1.0 - quality * (1.0 - hostility))


def warmup_inflation(warmup_fraction: float, penalty: float = 2.0) -> float:
    """Multiplier applied to cache/TLB miss rates after a migration.

    ``warmup_fraction`` is 1.0 immediately after the thread lands on a
    cold core and decays linearly to 0.0 as the private caches refill;
    the inflation interpolates between ``1 + penalty`` (fully cold) and
    1.0 (warm).  This is the mechanism that makes thrashing migrations
    costly in the kernel simulator.
    """
    frac = min(max(warmup_fraction, 0.0), 1.0)
    return 1.0 + penalty * frac
