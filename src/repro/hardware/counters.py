"""Hardware performance counters (paper Section 4.1).

The sensing phase of SmartBalance samples, per thread and per core, the
ten counters the paper enumerates:

* cycle counters — busy (``cyBusy``), idle (``cyIdle``, stalls) and
  sleep (``cySleep``) cycles;
* instruction counters — total, memory (loads+stores) and branch
  instructions committed;
* performance-event counters — branch mispredictions, L1I misses,
  L1D misses, I-TLB misses, D-TLB misses.

:class:`CounterBlock` is the raw accumulating register file; the kernel
simulator owns one per thread and one per core, charging events from
the micro-architecture model's :class:`~repro.hardware.microarch.PerfEstimate`
whenever a thread executes for a time slice.  Derived rates (miss
rates, instruction shares) are computed by
:meth:`CounterBlock.derive_rates` exactly as the paper defines them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.features import CoreType
from repro.hardware.microarch import PerfEstimate


@dataclass
class CounterBlock:
    """One set of accumulating hardware counters.

    All values are event *counts* since the last :meth:`reset` (the
    epoch boundary, in SmartBalance's usage).
    """

    cy_busy: float = 0.0
    cy_idle: float = 0.0
    cy_sleep: float = 0.0
    instructions: float = 0.0
    mem_instructions: float = 0.0
    branch_instructions: float = 0.0
    branch_mispredicts: float = 0.0
    l1i_misses: float = 0.0
    l1d_misses: float = 0.0
    itlb_misses: float = 0.0
    dtlb_misses: float = 0.0
    #: Accumulated busy wall time (seconds) — the τ of Eqs. 4–5.
    busy_time_s: float = 0.0

    def reset(self) -> None:
        """Zero all counters (epoch rollover)."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0.0)

    def charge_execution(
        self,
        perf: PerfEstimate,
        core: CoreType,
        duration_s: float,
        mem_share: float,
        branch_share: float,
    ) -> float:
        """Charge ``duration_s`` of execution at ``perf`` on ``core``.

        Returns the number of instructions committed so callers can
        advance thread progress.  Busy cycles are the stall-free
        execution cycles; idle cycles are the stall cycles — matching
        the paper's definition that idle cycles "capture idling time
        due to pipeline stalls or cache misses".
        """
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        cycles = duration_s * core.freq_hz
        instructions = perf.ipc * cycles
        busy = instructions * perf.base_cpi
        idle = max(cycles - busy, 0.0)

        mem_instr = instructions * mem_share
        branch_instr = instructions * branch_share

        self.cy_busy += busy
        self.cy_idle += idle
        self.instructions += instructions
        self.mem_instructions += mem_instr
        self.branch_instructions += branch_instr
        self.branch_mispredicts += branch_instr * perf.branch_miss_rate
        self.l1i_misses += instructions * perf.icache_miss_rate
        self.l1d_misses += mem_instr * perf.dcache_miss_rate
        self.itlb_misses += instructions * perf.itlb_miss_rate
        self.dtlb_misses += mem_instr * perf.dtlb_miss_rate
        self.busy_time_s += duration_s
        return instructions

    def charge_sleep(self, core: CoreType, duration_s: float) -> None:
        """Charge quiescent (no-runnable-thread) time."""
        if duration_s < 0:
            raise ValueError(f"duration must be non-negative, got {duration_s}")
        self.cy_sleep += duration_s * core.freq_hz

    def merge(self, other: "CounterBlock") -> None:
        """Accumulate another block into this one (in place)."""
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def snapshot(self) -> "CounterBlock":
        """Return an independent copy of the current counter values."""
        return CounterBlock(
            **{name: getattr(self, name) for name in self.__dataclass_fields__}
        )

    def derive_rates(self) -> "DerivedRates":
        """Compute the paper's derived per-epoch rates from raw counts."""
        instr = self.instructions
        mem = self.mem_instructions
        branch = self.branch_instructions
        active_cycles = self.cy_busy + self.cy_idle

        def ratio(num: float, den: float) -> float:
            return num / den if den > 0 else 0.0

        return DerivedRates(
            ipc=ratio(instr, active_cycles),
            mem_share=ratio(mem, instr),
            branch_share=ratio(branch, instr),
            branch_miss_rate=ratio(self.branch_mispredicts, branch),
            l1i_miss_rate=ratio(self.l1i_misses, instr),
            l1d_miss_rate=ratio(self.l1d_misses, mem),
            itlb_miss_rate=ratio(self.itlb_misses, instr),
            dtlb_miss_rate=ratio(self.dtlb_misses, mem),
            stall_fraction=ratio(self.cy_idle, active_cycles),
            ips=ratio(instr, self.busy_time_s),
        )


#: Count-valued fields of a :class:`CounterBlock` — everything a real
#: counter register holds.  ``busy_time_s`` is kernel bookkeeping, not
#: a hardware register, and is exempt from register-width pathologies.
COUNT_FIELDS = (
    "cy_busy",
    "cy_idle",
    "cy_sleep",
    "instructions",
    "mem_instructions",
    "branch_instructions",
    "branch_mispredicts",
    "l1i_misses",
    "l1d_misses",
    "itlb_misses",
    "dtlb_misses",
)


def apply_overflow(block: CounterBlock, bits: int) -> int:
    """Wrap every count field modulo ``2**bits``, in place.

    Models a counter register narrower than the epoch's event count —
    the classic unserviced-overflow failure of real PMUs.  Returns the
    number of fields that actually wrapped.
    """
    if bits < 1:
        raise ValueError(f"bits must be positive, got {bits}")
    modulus = float(2**bits)
    wrapped = 0
    for name in COUNT_FIELDS:
        value = getattr(block, name)
        if value >= modulus:
            setattr(block, name, value % modulus)
            wrapped += 1
    return wrapped


def apply_saturation(block: CounterBlock, ceiling: float) -> int:
    """Clamp every count field at ``ceiling``, in place.

    Models saturating counters that stick at full scale instead of
    wrapping.  Returns the number of fields clamped.
    """
    if ceiling <= 0:
        raise ValueError(f"ceiling must be positive, got {ceiling}")
    clamped = 0
    for name in COUNT_FIELDS:
        if getattr(block, name) > ceiling:
            setattr(block, name, ceiling)
            clamped += 1
    return clamped


@dataclass(frozen=True)
class DerivedRates:
    """Per-epoch rates derived from a :class:`CounterBlock`.

    ``ipc`` counts only non-sleep cycles; ``ips`` is instructions per
    second of *busy wall time* (the thread's own τ), matching
    ``ips_ij = Σ I / Σ τ`` of Eq. 4.
    """

    ipc: float
    mem_share: float
    branch_share: float
    branch_miss_rate: float
    l1i_miss_rate: float
    l1d_miss_rate: float
    itlb_miss_rate: float
    dtlb_miss_rate: float
    #: Fraction of non-sleep cycles lost to stalls
    #: (``cyIdle / (cyBusy + cyIdle)``).
    stall_fraction: float
    ips: float
