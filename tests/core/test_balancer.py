"""Tests for the SmartBalance sense-predict-balance engine."""

import pytest

from repro.core.annealing import SAConfig
from repro.core.balancer import SmartBalance
from repro.core.config import SmartBalanceConfig
from repro.core.training import default_predictor
from repro.experiments.fig7 import synthetic_view
from repro.hardware.platform import quad_hmp
from repro.hardware.sensors import NoiseModel
from repro.kernel.balancers.smart import SmartBalanceKernelAdapter
from repro.kernel.simulator import SimulationConfig, System
from repro.workload.synthetic import imb_threads


def engine(**config_kwargs) -> SmartBalance:
    return SmartBalance(
        default_predictor(), SmartBalanceConfig(**config_kwargs)
    )


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"min_improvement": -0.1},
            {"migration_penalty": -1.0},
            {"smoothing": 0.0},
            {"smoothing": 1.5},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SmartBalanceConfig(**kwargs)

    def test_defaults_valid(self):
        SmartBalanceConfig()


class TestDecide:
    def test_empty_window_keeps_placement(self):
        """First epoch has no measurements: no migration storm."""
        system = System(quad_hmp(), imb_threads("MTMI", 4), _null())
        view = system.build_view(window_s=0.0)
        decision = engine().decide(view)
        assert decision.placement is None
        assert decision.sa_result is None

    def test_decides_with_measurements(self):
        view = synthetic_view(4, 8, seed=1)
        decision = engine().decide(view)
        assert decision.sa_result is not None
        assert decision.matrices is not None
        assert decision.incumbent_value > 0.0

    def test_placement_targets_valid_cores(self):
        view = synthetic_view(4, 8, seed=2)
        decision = engine().decide(view)
        if decision.placement:
            for tid, core in decision.placement.items():
                assert 0 <= core < 4
                assert tid in {t.tid for t in view.tasks}

    def test_timings_populated(self):
        view = synthetic_view(4, 8, seed=3)
        decision = engine().decide(view)
        assert decision.timings.sense_s >= 0.0
        assert decision.timings.predict_s > 0.0
        assert decision.timings.balance_s > 0.0
        assert decision.timings.total_s == pytest.approx(
            decision.timings.sense_s
            + decision.timings.predict_s
            + decision.timings.balance_s
        )

    def test_adoption_gate_blocks_marginal_gains(self):
        """With an enormous required improvement nothing is adopted."""
        view = synthetic_view(4, 8, seed=4)
        decision = engine(min_improvement=1e9).decide(view)
        assert decision.placement is None

    def test_migration_penalty_reduces_churn(self):
        view = synthetic_view(4, 12, seed=5)
        free = engine(migration_penalty=0.0, min_improvement=0.0).decide(view)
        taxed = engine(migration_penalty=50.0, min_improvement=0.0).decide(view)
        n_free = len(free.placement or {})
        n_taxed = len(taxed.placement or {})
        assert n_taxed <= n_free

    def test_smoothing_state_tracks_threads(self):
        eng = engine()
        eng.decide(synthetic_view(4, 6, seed=6))
        assert len(eng._rows) == 6
        # A later view with fewer threads drops stale rows.
        eng.decide(synthetic_view(4, 3, seed=7))
        assert len(eng._rows) == 3

    def test_blend_moves_toward_new_observation(self):
        eng = engine(smoothing=0.5)
        first = eng.decide(synthetic_view(4, 4, seed=8))
        second = eng.decide(synthetic_view(4, 4, seed=9))
        assert first.matrices is not None and second.matrices is not None
        # smoothed rows exist and differ from the raw second build
        assert len(eng._rows) == 4


class TestKernelAdapter:
    def test_interval_is_epoch(self):
        adapter = SmartBalanceKernelAdapter(epoch_periods=10)
        assert adapter.interval_periods == 10

    def test_invalid_epoch_rejected(self):
        with pytest.raises(ValueError):
            SmartBalanceKernelAdapter(epoch_periods=0)

    def test_records_timings_per_epoch(self):
        adapter = SmartBalanceKernelAdapter()
        system = System(quad_hmp(), imb_threads("MTMI", 4), adapter)
        system.run(n_epochs=5)
        assert len(adapter.timings) == 5
        assert len(adapter.proposed_migrations) == 5

    def test_improves_over_initial_placement(self):
        """Closed loop: once sensing data exists the balancer lifts the
        system well above the round-robin initial placement and stays
        there (phase drift may wobble the level, not collapse it)."""
        adapter = SmartBalanceKernelAdapter()
        system = System(
            quad_hmp(), imb_threads("HTHI", 8),
            adapter, SimulationConfig(seed=1),
        )
        result = system.run(n_epochs=20)
        first = result.epochs[0].ips_per_watt  # pre-balancing epoch
        late = sum(e.ips_per_watt for e in result.epochs[-4:]) / 4
        assert late > 1.2 * first


def _null():
    from repro.kernel.balancers.base import NullBalancer

    return NullBalancer()
