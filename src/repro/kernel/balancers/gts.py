"""ARM Global Task Scheduling (GTS) policy — the state-of-the-art
comparator of paper Section 6.1.

GTS (ARM's big.LITTLE MP extension) tracks per-task load/utilisation
and makes a *binary*, threshold-driven choice between the big and the
little cluster: a task whose tracked utilisation crosses the
**up-migration threshold** is moved to a big core; one that falls below
the **down-migration threshold** is moved to a little core.  Within the
chosen cluster, tasks spread by load as usual.

The paper's critique — which this implementation deliberately
preserves — is that GTS (a) only supports exactly two core types,
(b) uses utilisation as a *proxy* for efficiency, with no per-thread
IPC or power awareness, and therefore (c) leaves ~20 % energy
efficiency on the table versus SmartBalance's direct optimisation.
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.balancers.base import LoadBalancer, Placement
from repro.kernel.view import SystemView, TaskView

#: Default migration thresholds from ARM's published big.LITTLE MP
#: patch set (fractions of full-scale utilisation).
UP_THRESHOLD = 0.70
DOWN_THRESHOLD = 0.25


class GtsBalancer(LoadBalancer):
    """Utilisation-threshold big/little selection + in-cluster spread."""

    name = "gts"
    interval_periods = 1

    def __init__(
        self,
        up_threshold: float = UP_THRESHOLD,
        down_threshold: float = DOWN_THRESHOLD,
    ) -> None:
        if not 0.0 < down_threshold < up_threshold <= 1.0:
            raise ValueError(
                "thresholds must satisfy 0 < down < up <= 1, got "
                f"down={down_threshold}, up={up_threshold}"
            )
        self.up_threshold = up_threshold
        self.down_threshold = down_threshold
        self._big_cluster: Optional[str] = None
        self._little_cluster: Optional[str] = None

    def _identify_clusters(self, view: SystemView) -> tuple[str, str]:
        """Find the big and little clusters; GTS requires exactly two.

        The big cluster is the one with the higher peak single-thread
        capacity (frequency x issue width) — the static capacity table
        a real GTS kernel is given by the device tree.
        """
        if self._big_cluster is not None and self._little_cluster is not None:
            return self._big_cluster, self._little_cluster
        clusters = view.platform.clusters
        if len(clusters) != 2:
            raise ValueError(
                "GTS supports exactly two clusters (big.LITTLE); platform "
                f"{view.platform.name!r} has {len(clusters)}"
            )

        def capacity(cluster_name: str) -> float:
            core = clusters[cluster_name][0]
            return core.core_type.freq_mhz * core.core_type.issue_width

        names = sorted(clusters, key=capacity, reverse=True)
        self._big_cluster, self._little_cluster = names[0], names[1]
        return self._big_cluster, self._little_cluster

    def rebalance(self, view: SystemView) -> Optional[Placement]:
        big, little = self._identify_clusters(view)
        clusters = view.platform.clusters
        core_cluster = {c.core_id: c.cluster for c in view.platform}

        loads = {c.core_id: 0.0 for c in view.cores}
        for task in view.tasks:
            loads[task.core_id] += task.weight * max(task.utilization, 0.05)

        placement: Placement = {}
        for task in view.tasks:
            current_cluster = core_cluster[task.core_id]
            target_cluster = current_cluster
            if task.utilization >= self.up_threshold:
                target_cluster = big
            elif task.utilization <= self.down_threshold:
                target_cluster = little
            if target_cluster != current_cluster:
                target = self._least_loaded(clusters[target_cluster], loads)
                load = task.weight * max(task.utilization, 0.05)
                loads[task.core_id] -= load
                loads[target] += load
                placement[task.tid] = target

        # In-cluster load balancing (GTS keeps the normal CFS balancer
        # inside each cluster).
        for cluster_cores in clusters.values():
            self._balance_within(cluster_cores, view, loads, placement)
        return placement or None

    @staticmethod
    def _least_loaded(cores, loads) -> int:
        return min((c.core_id for c in cores), key=lambda cid: loads[cid])

    def _balance_within(self, cores, view: SystemView, loads, placement: Placement) -> None:
        core_ids = {c.core_id for c in cores}
        members: dict[int, list[TaskView]] = {cid: [] for cid in core_ids}
        for task in view.tasks:
            effective_core = placement.get(task.tid, task.core_id)
            if effective_core in core_ids:
                members[effective_core].append(task)
        for _ in range(len(view.tasks)):
            busiest = max(core_ids, key=lambda c: loads[c])
            idlest = min(core_ids, key=lambda c: loads[c])
            if loads[idlest] > 0 and loads[busiest] <= loads[idlest] * 1.25:
                break
            movable = members[busiest]
            if len(movable) <= 1:
                break
            task = min(movable, key=lambda t: t.utilization)
            load = task.weight * max(task.utilization, 0.05)
            placement[task.tid] = idlest
            members[busiest].remove(task)
            members[idlest].append(task)
            loads[busiest] -= load
            loads[idlest] += load
