"""Estimation phase: per-thread and per-core aggregates (Eqs. 4–7).

The per-thread measured throughput and power (Eqs. 4–5) arrive with the
:class:`~repro.core.sensing.ThreadObservation`; this module adds the
core-level aggregates the paper defines —

* Eq. 6: ``IPS_j``, the average of the member threads' throughputs,
* Eq. 7: ``P_j``, the average of the member threads' powers,

plus the epoch-average core IPC identity
``IPS_j = IPC_j · F_j = I_total · F / (cyBusy + cyIdle)`` used for
validation, and the feature vector ``X_ij`` (the regressor input of
Eq. 8, with the Table 4 feature ordering).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.sensing import EpochObservation, ThreadObservation
from repro.hardware.counters import CounterBlock
from repro.hardware.features import CoreType

#: Feature ordering of the Θ regressor — the Table 4 columns (source
#: frequency, L1I/L1D miss rates, memory/branch instruction shares,
#: branch/i-TLB/d-TLB miss rates, source IPC, intercept) plus the
#: stall fraction.  The stall fraction (``cyIdle / (cyBusy + cyIdle)``)
#: comes from the same cycle counters the paper already samples and
#: separates stall-bound from issue-bound threads, which the other
#: rates cannot do alone.
FEATURE_NAMES = (
    "freq_mhz",
    "mr_l1i",
    "mr_l1d",
    "i_msh",
    "i_bsh",
    "mr_b",
    "mr_itlb",
    "mr_dtlb",
    "ipc_src",
    "stall_frac",
    "const",
)

N_FEATURES = len(FEATURE_NAMES)


def feature_vector(observation: ThreadObservation) -> np.ndarray:
    """The ``X_ij`` characterisation vector of Eq. 8 for one thread."""
    rates = observation.rates
    return features_from_rates(
        freq_mhz=observation.core_type.freq_mhz,
        mr_l1i=rates.l1i_miss_rate,
        mr_l1d=rates.l1d_miss_rate,
        i_msh=rates.mem_share,
        i_bsh=rates.branch_share,
        mr_b=rates.branch_miss_rate,
        mr_itlb=rates.itlb_miss_rate,
        mr_dtlb=rates.dtlb_miss_rate,
        ipc_src=rates.ipc,
        stall_frac=rates.stall_fraction,
    )


def features_from_rates(
    freq_mhz: float,
    mr_l1i: float,
    mr_l1d: float,
    i_msh: float,
    i_bsh: float,
    mr_b: float,
    mr_itlb: float,
    mr_dtlb: float,
    ipc_src: float,
    stall_frac: float = 0.0,
) -> np.ndarray:
    """Assemble a feature vector in the canonical order."""
    return np.array(
        [
            freq_mhz,
            mr_l1i,
            mr_l1d,
            i_msh,
            i_bsh,
            mr_b,
            mr_itlb,
            mr_dtlb,
            ipc_src,
            stall_frac,
            1.0,
        ]
    )


@dataclass(frozen=True)
class CoreEstimate:
    """Eqs. 6–7 aggregates for one core over one epoch."""

    core_id: int
    #: Eq. 6 — mean of member threads' measured IPS.
    ips_avg: float
    #: Eq. 7 — mean of member threads' measured power (W).
    power_avg: float
    n_threads: int


def estimate_cores(observation: EpochObservation) -> dict[int, CoreEstimate]:
    """Per-core Eq. 6/7 estimates from the epoch's thread observations."""
    groups: dict[int, list[ThreadObservation]] = {}
    for thread in observation.measured_threads:
        groups.setdefault(thread.core_id, []).append(thread)
    estimates = {}
    for core_id, threads in groups.items():
        n = len(threads)
        estimates[core_id] = CoreEstimate(
            core_id=core_id,
            ips_avg=sum(t.ips_measured for t in threads) / n,
            power_avg=sum(t.power_measured for t in threads) / n,
            n_threads=n,
        )
    return estimates


def core_ips_from_counters(counters: CounterBlock, core_type: CoreType) -> float:
    """The paper's core-IPS identity: ``I_total · F / (cyBusy + cyIdle)``.

    Used to cross-check Eq. 6 aggregation against raw core counters.
    """
    active_cycles = counters.cy_busy + counters.cy_idle
    if active_cycles <= 0:
        return 0.0
    return counters.instructions * core_type.freq_hz / active_cycles
