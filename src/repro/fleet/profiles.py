"""Per-(request, platform) performance profiles — the fleet's predictors.

The node-level SmartBalance loop predicts per-(thread, core-type)
IPS/W from sensed counters (Eqs. 8/9); the fleet tier lifts the same
predict-then-optimize idea one level up and needs per-(request,
node-platform) predictions to route with.  Those come from here:

* ``simulated`` — every request slot is executed on every distinct
  node platform through the **real** sense→predict→balance simulator
  via :func:`repro.runner.run_specs` (deduplicated, cacheable and
  parallel across ``--jobs`` workers).  A node agent therefore embeds
  the same job executor the service tier runs — a fleet job costs what
  the full simulator says it costs on that platform.
* ``analytic`` — a closed-form, seeded stand-in with the same
  heterogeneity structure (different platforms expose different IPS/W
  fronts) at zero simulator cost, for fast unit tests of the routing
  and fault machinery.

Either way the result is a :class:`ProfileTable` mapping
``(slot, platform)`` to a :class:`JobProfile`, and the whole table is
a pure function of the :class:`~repro.fleet.spec.FleetSpec` — profile
phase worker counts cannot change any routed decision (the chaos
determinism suite pins jobs=1 == jobs=N).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.fleet.spec import FleetSpec, _derive
from repro.runner.spec import RunSpec


@dataclass(frozen=True)
class JobProfile:
    """What one request slot costs on one node platform."""

    duration_s: float
    instructions: float
    energy_j: float

    @property
    def ips_per_watt(self) -> float:
        return self.instructions / self.energy_j if self.energy_j > 0 else 0.0

    @property
    def ips(self) -> float:
        return self.instructions / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def power_w(self) -> float:
        return self.energy_j / self.duration_s if self.duration_s > 0 else 0.0


class ProfileTable:
    """``(slot, platform) -> JobProfile`` plus per-platform nominals."""

    def __init__(self, profiles: "dict[tuple[int, str], JobProfile]") -> None:
        self._profiles = profiles
        self._nominal: "dict[str, float]" = {}
        by_platform: "dict[str, list[float]]" = {}
        for (_, platform), profile in profiles.items():
            by_platform.setdefault(platform, []).append(profile.ips_per_watt)
        for platform, values in by_platform.items():
            self._nominal[platform] = sum(values) / len(values)

    def get(self, slot: int, platform: str) -> JobProfile:
        return self._profiles[(slot, platform)]

    def nominal_ips_per_watt(self, platform: str) -> float:
        """Mean profiled IPS/W of a platform — the sanity anchor the
        dispatcher checks reported telemetry against."""
        return self._nominal[platform]

    def __len__(self) -> int:
        return len(self._profiles)


def simulated_profiles(
    spec: FleetSpec,
    jobs: Optional[int] = None,
    cache=None,
) -> ProfileTable:
    """Profile every (slot, platform) pair through the sweep engine."""
    from repro.runner.engine import run_specs

    run_specs_list: "list[RunSpec]" = spec.profile_specs()
    results = run_specs(run_specs_list, jobs=jobs, cache=cache)
    profiles: "dict[tuple[int, str], JobProfile]" = {}
    index = 0
    for platform in spec.platforms:
        for slot in range(spec.distinct_jobs):
            result = results[index]
            index += 1
            profiles[(slot, platform)] = JobProfile(
                duration_s=result.duration_s,
                instructions=result.instructions,
                energy_j=result.energy_j,
            )
    return ProfileTable(profiles)


#: Baseline (IPS, Watt) operating points for the analytic stand-in.
#: Different platforms sit on different IPS/W fronts on purpose —
#: placement has to matter for the energy-aware router to beat
#: round-robin.
_ANALYTIC_BASES = {
    "quad": (2.4e9, 3.2),
    "biglittle": (3.0e9, 5.0),
}
_ANALYTIC_DEFAULT = (2.0e9, 4.0)


def analytic_profiles(spec: FleetSpec) -> ProfileTable:
    """Closed-form, seeded profiles (no simulator runs).

    Per (slot, platform): the platform's base operating point scaled
    by a deterministic per-pair factor in [0.7, 1.3] — heterogeneous
    enough that the energy-aware placement is non-trivial, cheap
    enough for unit tests.
    """
    profiles: "dict[tuple[int, str], JobProfile]" = {}
    epoch_s = 0.06  # the simulator's default epoch length
    for platform in spec.platforms:
        base_ips, base_w = _ANALYTIC_BASES.get(platform, _ANALYTIC_DEFAULT)
        for slot in range(spec.distinct_jobs):
            workload, slot_seed = spec.slot_identity(slot)
            h = _derive(slot_seed, "profile", platform, workload)
            ips_factor = 0.7 + 0.6 * ((h & 0xFFFF) / 0xFFFF)
            power_factor = 0.7 + 0.6 * (((h >> 16) & 0x7FFF) / 0x7FFF)
            duration = spec.n_epochs * epoch_s
            ips = base_ips * ips_factor
            watts = base_w * power_factor
            profiles[(slot, platform)] = JobProfile(
                duration_s=duration,
                instructions=ips * duration,
                energy_j=watts * duration,
            )
    return ProfileTable(profiles)


def build_profiles(
    spec: FleetSpec,
    jobs: Optional[int] = None,
    cache=None,
) -> ProfileTable:
    """The spec's profile table, per its ``profile`` mode."""
    if spec.profile == "analytic":
        return analytic_profiles(spec)
    return simulated_profiles(spec, jobs=jobs, cache=cache)
