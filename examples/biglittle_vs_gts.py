#!/usr/bin/env python3
"""SmartBalance vs ARM GTS and Linaro IKS on octa-core big.LITTLE.

The Fig. 5 / Section 6.1 scenario: a 4+4 big.LITTLE platform running
PARSEC workloads under the cluster-switching IKS, the utilisation-
threshold GTS, and SmartBalance.  GTS and IKS only work on two-cluster
platforms; SmartBalance handles this as just another heterogeneous
configuration.

Run:  python examples/biglittle_vs_gts.py
"""

from repro import (
    GtsBalancer,
    IksBalancer,
    SmartBalanceKernelAdapter,
    System,
    VanillaBalancer,
    benchmark,
    big_little_octa,
)
from repro.analysis import format_table, mean


def main() -> None:
    platform = big_little_octa()
    print(f"Platform: {platform.describe()}\n")

    benchmarks = ["x264_L_bow", "x264_H_crew", "bodytrack", "blackscholes"]
    balancers = [VanillaBalancer, IksBalancer, GtsBalancer, SmartBalanceKernelAdapter]

    rows = []
    smart_vs_gts = []
    for bench_name in benchmarks:
        normalised = {}
        raw = {}
        for make in balancers:
            balancer = make()
            system = System(platform, benchmark(bench_name).threads(8), balancer)
            raw[balancer.name] = system.run(n_epochs=30).ips_per_watt
        gts = raw["gts"]
        for name, value in raw.items():
            normalised[name] = value / gts
        smart_vs_gts.append(100.0 * (normalised["smartbalance"] - 1.0))
        rows.append(
            [
                bench_name,
                round(normalised["vanilla"], 2),
                round(normalised["iks"], 2),
                1.0,
                round(normalised["smartbalance"], 2),
            ]
        )

    print(
        format_table(
            ["benchmark", "vanilla", "IKS", "GTS", "SmartBalance"],
            rows,
            title="Normalised energy efficiency (GTS = 1.0), 8 threads each",
        )
    )
    print(
        f"\nSmartBalance vs GTS: {mean(smart_vs_gts):+.1f} % on average "
        "(paper: ~20 %)"
    )


if __name__ == "__main__":
    main()
