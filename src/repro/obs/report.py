"""Diagnostic report rendered from a structured event stream.

Turns a JSONL trace (the raw events of :mod:`repro.obs.events`) into
the paper's headline diagnostics:

* **Prediction accuracy** — mean absolute percentage error of the
  cross-core IPS and power predictions (Eqs. 8–9), broken down per
  (source type -> target type) pair like Table 4 of the paper.
* **Annealer convergence** — iteration/acceptance/uphill statistics of
  the simulated-annealing search (Algorithm 1) and how much the
  objective improved per invocation.
* **Migration causality** — how many migrations each cause produced.
* **Resilience pairing** — injected-fault and mitigation counts by kind.
* **Epoch health** — degenerate-epoch count (epochs whose energy
  accounting made ``ips_per_watt`` meaningless).
* **Governor** — joint placement + DVFS decision counts and the
  cluster OPP switch ledger, when the run used ``--governor``.
* **Fleet** — multi-node dispatch/completion totals and the node
  failure + reroute ledger, when the trace came from a
  :mod:`repro.fleet` run.
* **Phase overhead** — the wall-clock sense/predict/balance breakdown
  when the trace carries a ``phase_profile`` event (Fig. 7 data).

:func:`build_report` produces a plain dict (JSON-ready, fully
deterministic given a deterministic event stream); :func:`render_report`
formats it as the fixed-width text the ``repro report`` subcommand
prints.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.obs import events as ev


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _pair_key(src: str, dst: str) -> str:
    return f"{src}->{dst}"


def build_prediction_accuracy(events: Iterable[dict]) -> "dict[str, dict]":
    """Per-(source,target) core-type-pair prediction error summary."""
    pairs: "dict[str, dict]" = {}
    for event in events:
        if event.get("type") != ev.PREDICTION_CHECK:
            continue
        key = _pair_key(str(event["src_type"]), str(event["dst_type"]))
        bucket = pairs.setdefault(key, {"ipc": [], "power": []})
        bucket["ipc"].append(float(event["ipc_abs_pct_error"]))
        power_err = event.get("power_abs_pct_error")
        if power_err is not None:
            bucket["power"].append(float(power_err))
    report = {}
    for key in sorted(pairs):
        bucket = pairs[key]
        report[key] = {
            "samples": len(bucket["ipc"]),
            "ipc_mean_abs_pct_error": _mean(bucket["ipc"]),
            "ipc_max_abs_pct_error": max(bucket["ipc"]) if bucket["ipc"] else 0.0,
            "power_samples": len(bucket["power"]),
            "power_mean_abs_pct_error": _mean(bucket["power"]),
        }
    return report


def build_annealer_summary(events: Iterable[dict]) -> dict:
    runs = [e for e in events if e.get("type") == ev.ANNEAL]
    if not runs:
        return {"runs": 0}
    iterations = [int(e["iterations"]) for e in runs]
    accepted = [int(e["accepted"]) for e in runs]
    uphill = [int(e["uphill"]) for e in runs]
    improvements = [
        float(e["improvement_pct"]) for e in runs if e.get("improvement_pct") is not None
    ]
    return {
        "runs": len(runs),
        "iterations_total": sum(iterations),
        "iterations_mean": _mean(iterations),
        "accepted_total": sum(accepted),
        "uphill_total": sum(uphill),
        "acceptance_rate": (
            sum(accepted) / sum(iterations) if sum(iterations) else 0.0
        ),
        "truncated_runs": sum(1 for e in runs if e.get("truncated")),
        "improvement_pct_mean": _mean(improvements),
    }


def _count_by(events: Iterable[dict], etype: str, field: str) -> "dict[str, int]":
    counts: "dict[str, int]" = {}
    for event in events:
        if event.get("type") != etype:
            continue
        key = str(event.get(field))
        counts[key] = counts.get(key, 0) + 1
    return dict(sorted(counts.items()))


def build_adaptation_summary(events: Iterable[dict]) -> dict:
    """Online model-maintenance activity: drift alarms, commits with
    their held-out error deltas, rollbacks, and the version history."""
    drifts = [e for e in events if e.get("type") == ev.DRIFT_DETECTED]
    updates = [e for e in events if e.get("type") == ev.MODEL_UPDATE]
    rollbacks = [e for e in events if e.get("type") == ev.MODEL_ROLLBACK]
    deltas = [
        float(e["holdout_error_before_pct"]) - float(e["holdout_error_after_pct"])
        for e in updates
        if e.get("holdout_error_before_pct") is not None
        and e.get("holdout_error_after_pct") is not None
    ]
    return {
        "drift_detections": len(drifts),
        "drifted_pairs": sorted({str(e["pair"]) for e in drifts}),
        "model_updates": len(updates),
        "model_rollbacks": len(rollbacks),
        "updates_by_cause": _count_by(events, ev.MODEL_UPDATE, "cause"),
        "mean_holdout_improvement_pct": _mean(deltas),
        "versions": [
            {
                "version": int(e["version"]),
                "epoch": e.get("epoch"),
                "cause": str(e["cause"]),
                "fingerprint": e.get("fingerprint"),
                "pairs_updated": list(e.get("pairs_updated") or []),
            }
            for e in updates
        ],
    }


def build_governor_summary(events: Iterable[dict]) -> dict:
    """Joint placement + DVFS governor activity: decision counts,
    adoption rate, OPP switch ledger and the per-cluster level
    trajectory endpoints."""
    decisions = [e for e in events if e.get("type") == ev.GOVERNOR_DECISION]
    switches = [e for e in events if e.get("type") == ev.OPP_CHANGE]
    if not decisions and not switches:
        return {"decisions": 0, "opp_switches": 0}
    candidates = [int(e.get("candidates_evaluated") or 0) for e in decisions]
    return {
        "decisions": len(decisions),
        "strategy": str(decisions[0]["strategy"]) if decisions else None,
        "adopted": sum(1 for e in decisions if e.get("adopted")),
        "candidates_evaluated_total": sum(candidates),
        "candidates_evaluated_mean": _mean(candidates),
        "opp_switches": len(switches),
        "switches_by_cluster": _count_by(events, ev.OPP_CHANGE, "cluster"),
        "transition_energy_j": sum(
            float(e.get("transition_energy_j") or 0.0) for e in switches
        ),
        "transition_latency_s": sum(
            float(e.get("transition_latency_s") or 0.0) for e in switches
        ),
        # Last write per cluster; clusters that never switched ran at
        # their top (nominal) rung throughout and have no entry here.
        "final_levels": {
            str(e["cluster"]): int(e["to_level"]) for e in switches
        },
        "switch_ledger": [
            {
                "t_s": float(e["t_s"]),
                "cluster": str(e["cluster"]),
                "from_level": int(e["from_level"]),
                "to_level": int(e["to_level"]),
                "from_freq_mhz": float(e["from_freq_mhz"]),
                "to_freq_mhz": float(e["to_freq_mhz"]),
            }
            for e in switches
        ],
    }


def build_fleet_summary(events: Iterable[dict]) -> dict:
    """Fleet-tier activity: dispatch/completion totals, the node
    failure + recovery ledger, reroute causes and circuit actions.

    The ledger is *consistent by construction*: every ``node_down``
    event carries the number of jobs rescued off that node, and every
    rescue shows up again as a ``reroute`` event — the report
    cross-counts both sides.
    """
    events = list(events)
    dispatches = [e for e in events if e.get("type") == ev.FLEET_DISPATCH]
    completes = [e for e in events if e.get("type") == ev.FLEET_COMPLETE]
    downs = [e for e in events if e.get("type") == ev.NODE_DOWN]
    reroutes = [e for e in events if e.get("type") == ev.REROUTE]
    duplicates = [e for e in completes if e.get("duplicate")]
    recoveries = [
        e for e in events
        if e.get("type") == ev.NODE_UP and e.get("detail") != "boot"
    ]
    latencies = [
        float(e["latency_s"]) for e in completes
        if not e.get("duplicate") and e.get("latency_s") is not None
    ]
    return {
        "dispatches": len(dispatches),
        "degraded_dispatches": sum(1 for e in dispatches if e.get("degraded")),
        "completions": len(completes) - len(duplicates),
        "duplicates": len(duplicates),
        "jobs": len({str(e["job"]) for e in dispatches}),
        "mean_completion_latency_s": _mean(latencies),
        "dispatches_by_node": _count_by(events, ev.FLEET_DISPATCH, "node"),
        "completions_by_node": _count_by(
            (e for e in completes if not e.get("duplicate")),
            ev.FLEET_COMPLETE, "node",
        ),
        "node_failures": [
            {
                "node": int(e["node"]),
                "t_s": float(e["t_s"]),
                "cause": str(e["cause"]),
                "jobs_rescued": int(e.get("jobs_rescued") or 0),
            }
            for e in downs
        ],
        "jobs_rescued_total": sum(int(e.get("jobs_rescued") or 0) for e in downs),
        "node_recoveries": len(recoveries),
        "heartbeats_missed": sum(
            1 for e in events if e.get("type") == ev.HEARTBEAT_MISSED
        ),
        "reroutes": len(reroutes),
        "reroutes_by_cause": _count_by(events, ev.REROUTE, "cause"),
        "circuit_opens": sum(
            1 for e in events if e.get("type") == ev.CIRCUIT_OPEN
        ),
        "circuit_closes": sum(
            1 for e in events if e.get("type") == ev.CIRCUIT_CLOSE
        ),
    }


def build_scenario_summary(events: Iterable[dict]) -> dict:
    """Scenario-tier activity: request latency percentiles and SLO
    misses (open-loop traffic) plus barrier release/stall totals."""
    events = list(events)
    completes = [
        e for e in events if e.get("type") == ev.REQUEST_COMPLETED
    ]
    arrivals = sum(
        1 for e in events if e.get("type") == ev.REQUEST_ARRIVED
    )
    stalls = [e for e in events if e.get("type") == ev.BARRIER_STALL]
    summary: dict = {
        "requests_arrived": arrivals,
        "requests_completed": len(completes),
        "barriers_released": len(stalls),
    }
    if completes:
        from repro.analysis.stats import percentiles

        latencies = [float(e["latency_s"]) for e in completes]
        p50, p95, p99 = percentiles(latencies, (0.50, 0.95, 0.99))
        misses = sum(1 for e in completes if e.get("slo_miss"))
        summary.update(
            latency_p50_s=p50,
            latency_p95_s=p95,
            latency_p99_s=p99,
            latency_mean_s=_mean(latencies),
            slo_misses=misses,
            slo_miss_rate=misses / len(completes),
        )
    if stalls:
        summary.update(
            barrier_stall_s=sum(float(e.get("stall_s") or 0.0) for e in stalls),
            barrier_stalls_by_group=_count_by(
                events, ev.BARRIER_STALL, "group"
            ),
        )
    return summary


def build_report(events: Sequence[dict]) -> dict:
    """Aggregate one event stream into the full diagnostic report."""
    run_end = next((e for e in events if e.get("type") == ev.RUN_END), None)
    phase_profile = next(
        (e for e in events if e.get("type") == ev.PHASE_PROFILE), None
    )
    epochs = sum(1 for e in events if e.get("type") == ev.EPOCH_END)
    degenerate = sum(1 for e in events if e.get("type") == ev.DEGENERATE_EPOCH)
    report = {
        "events": len(events),
        "epochs": epochs,
        "degenerate_epochs": degenerate,
        "run": None
        if run_end is None
        else {
            "duration_s": run_end.get("duration_s"),
            "instructions": run_end.get("instructions"),
            "energy_j": run_end.get("energy_j"),
            "migrations": run_end.get("migrations"),
            "ips_per_watt": run_end.get("ips_per_watt"),
        },
        "prediction_accuracy": build_prediction_accuracy(events),
        "annealer": build_annealer_summary(events),
        "migration_causes": _count_by(events, ev.MIGRATION, "cause"),
        "faults_injected": _count_by(events, ev.FAULT_INJECTED, "kind"),
        "mitigations": _count_by(events, ev.MITIGATION, "kind"),
        "degradation_transitions": _count_by(events, ev.DEGRADATION, "state"),
        "adaptation": build_adaptation_summary(events),
        "governor": build_governor_summary(events),
        "fleet": build_fleet_summary(events),
        "scenario": build_scenario_summary(events),
        "phase_profile": None
        if phase_profile is None
        else dict(phase_profile.get("phases") or {}),
    }
    return report


# ---------------------------------------------------------------------------
# Text rendering
# ---------------------------------------------------------------------------


def _section(title: str) -> "list[str]":
    return ["", title, "-" * len(title)]


def render_report(report: dict) -> str:
    """Format a :func:`build_report` dict as fixed-width text."""
    lines = ["SmartBalance trace report", "========================="]
    lines.append(
        f"events: {report['events']}   epochs: {report['epochs']}   "
        f"degenerate epochs: {report['degenerate_epochs']}"
    )

    run = report.get("run")
    if run:
        lines += _section("Run summary")
        lines.append(f"  duration      {run['duration_s']:.6g} s")
        lines.append(f"  instructions  {run['instructions']:.6g}")
        lines.append(f"  energy        {run['energy_j']:.6g} J")
        lines.append(f"  migrations    {run['migrations']}")
        if run.get("ips_per_watt") is not None:
            lines.append(f"  IPS/Watt      {run['ips_per_watt']:.6g}")

    accuracy = report.get("prediction_accuracy") or {}
    lines += _section("Prediction accuracy (abs % error, Table 4)")
    if accuracy:
        header = (
            f"  {'pair':<18} {'samples':>7} {'ipc mean':>9} {'ipc max':>9} "
            f"{'power mean':>10}"
        )
        lines.append(header)
        for pair, row in accuracy.items():
            power = (
                f"{row['power_mean_abs_pct_error']:>10.2f}"
                if row["power_samples"]
                else f"{'-':>10}"
            )
            lines.append(
                f"  {pair:<18} {row['samples']:>7} "
                f"{row['ipc_mean_abs_pct_error']:>9.2f} "
                f"{row['ipc_max_abs_pct_error']:>9.2f} {power}"
            )
    else:
        lines.append("  (no prediction_check events in trace)")

    annealer = report.get("annealer") or {}
    lines += _section("Annealer convergence (Algorithm 1)")
    if annealer.get("runs"):
        lines.append(f"  runs              {annealer['runs']}")
        lines.append(
            f"  iterations        total={annealer['iterations_total']} "
            f"mean={annealer['iterations_mean']:.1f}"
        )
        lines.append(
            f"  accepted          {annealer['accepted_total']} "
            f"(rate {annealer['acceptance_rate']:.1%}, "
            f"uphill {annealer['uphill_total']})"
        )
        lines.append(f"  truncated runs    {annealer['truncated_runs']}")
        lines.append(
            f"  mean improvement  {annealer['improvement_pct_mean']:.2f}%"
        )
    else:
        lines.append("  (no anneal events in trace)")

    for title, key in (
        ("Migrations by cause", "migration_causes"),
        ("Faults injected by kind", "faults_injected"),
        ("Mitigations by kind", "mitigations"),
        ("Degradation transitions", "degradation_transitions"),
    ):
        counts = report.get(key) or {}
        if counts:
            lines += _section(title)
            for name, count in counts.items():
                lines.append(f"  {name:<26} {count}")

    adaptation = report.get("adaptation") or {}
    if (
        adaptation.get("drift_detections")
        or adaptation.get("model_updates")
        or adaptation.get("model_rollbacks")
    ):
        lines += _section("Adaptation (online model maintenance)")
        lines.append(
            f"  drift detections  {adaptation['drift_detections']} "
            f"({', '.join(adaptation['drifted_pairs']) or 'none'})"
        )
        lines.append(
            f"  model updates     {adaptation['model_updates']} "
            f"(rollbacks {adaptation['model_rollbacks']})"
        )
        if adaptation.get("model_updates"):
            lines.append(
                "  mean held-out error improvement  "
                f"{adaptation['mean_holdout_improvement_pct']:.2f} pp"
            )
        for row in adaptation.get("versions") or []:
            epoch = row.get("epoch")
            lines.append(
                f"    v{row['version']} @ epoch {epoch if epoch is not None else '?'}"
                f" cause={row['cause']}"
                f" pairs={len(row['pairs_updated'])}"
                f" fp={row.get('fingerprint') or '-'}"
            )

    governor = report.get("governor") or {}
    if governor.get("decisions") or governor.get("opp_switches"):
        lines += _section("Governor (joint placement + DVFS)")
        lines.append(
            f"  strategy          {governor.get('strategy') or '?'}"
        )
        lines.append(
            f"  decisions         {governor['decisions']} "
            f"(adopted {governor.get('adopted', 0)})"
        )
        lines.append(
            "  candidates        "
            f"total={governor.get('candidates_evaluated_total', 0)} "
            f"mean={governor.get('candidates_evaluated_mean', 0.0):.1f}"
        )
        lines.append(
            f"  OPP switches      {governor['opp_switches']} "
            f"(transition energy "
            f"{governor.get('transition_energy_j', 0.0) * 1e6:.1f} uJ, "
            f"dead time {governor.get('transition_latency_s', 0.0) * 1e6:.1f} us)"
        )
        final = governor.get("final_levels") or {}
        if final:
            lines.append(
                "  final levels      "
                + ", ".join(f"{k}={v}" for k, v in sorted(final.items()))
            )
        for row in governor.get("switch_ledger") or []:
            lines.append(
                f"    {row['cluster']:<8} @ {row['t_s']:.3f}s  "
                f"L{row['from_level']}->L{row['to_level']}  "
                f"{row['from_freq_mhz']:.0f}->{row['to_freq_mhz']:.0f} MHz"
            )

    fleet = report.get("fleet") or {}
    if fleet.get("dispatches"):
        lines += _section("Fleet (multi-node dispatch)")
        lines.append(
            f"  jobs              {fleet['jobs']} "
            f"(dispatches {fleet['dispatches']}, "
            f"degraded {fleet['degraded_dispatches']})"
        )
        lines.append(
            f"  completions       {fleet['completions']} "
            f"(duplicates suppressed {fleet['duplicates']})"
        )
        lines.append(
            "  mean latency      "
            f"{fleet['mean_completion_latency_s']:.6g} s"
        )
        lines.append(
            f"  heartbeats missed {fleet['heartbeats_missed']}   "
            f"node recoveries {fleet['node_recoveries']}   "
            f"circuit open/close {fleet['circuit_opens']}/"
            f"{fleet['circuit_closes']}"
        )
        per_node = fleet.get("dispatches_by_node") or {}
        if per_node:
            done = fleet.get("completions_by_node") or {}
            lines.append(f"  {'node':<6} {'dispatched':>10} {'completed':>10}")
            for node, count in per_node.items():
                lines.append(
                    f"  {node:<6} {count:>10} {done.get(node, 0):>10}"
                )
        failures = fleet.get("node_failures") or []
        if failures:
            lines.append("  node failures:")
            for row in failures:
                lines.append(
                    f"    node {row['node']} down @ {row['t_s']:.3f}s "
                    f"({row['cause']}), {row['jobs_rescued']} rescued"
                )
        causes = fleet.get("reroutes_by_cause") or {}
        if causes:
            lines.append(
                "  reroutes:         "
                + ", ".join(f"{k}={v}" for k, v in causes.items())
            )

    scenario = report.get("scenario") or {}
    if (
        scenario.get("requests_completed")
        or scenario.get("requests_arrived")
        or scenario.get("barriers_released")
    ):
        lines += _section("Scenario (workload scenarios)")
        if scenario.get("requests_arrived") or scenario.get("requests_completed"):
            lines.append(
                f"  requests:         {scenario.get('requests_completed', 0)} "
                f"completed / {scenario.get('requests_arrived', 0)} arrived"
            )
        if "latency_p50_s" in scenario:
            lines.append(
                "  latency:          "
                f"p50={scenario['latency_p50_s'] * 1e3:.2f}ms "
                f"p95={scenario['latency_p95_s'] * 1e3:.2f}ms "
                f"p99={scenario['latency_p99_s'] * 1e3:.2f}ms"
            )
            lines.append(
                f"  SLO misses:       {scenario['slo_misses']} "
                f"({scenario['slo_miss_rate']:.1%})"
            )
        if scenario.get("barriers_released"):
            lines.append(
                f"  barriers:         {scenario['barriers_released']} released, "
                f"{scenario.get('barrier_stall_s', 0.0):.4f}s total stall"
            )
            by_group = scenario.get("barrier_stalls_by_group") or {}
            if by_group:
                lines.append(
                    "  releases by group: "
                    + ", ".join(f"{k}={v}" for k, v in sorted(by_group.items()))
                )

    phases = report.get("phase_profile")
    if phases:
        lines += _section("Phase overhead (wall clock, Fig. 7)")
        total = sum(float(v) for v in phases.values()) or 1.0
        for name, seconds in sorted(phases.items()):
            lines.append(
                f"  {name:<10} {float(seconds):>10.6f} s "
                f"({float(seconds) / total:.1%})"
            )
    return "\n".join(lines) + "\n"
