"""Tests for the fixed-point optimizer primitives (rand, e^-x)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.fixed_point import (
    ONE_Q16,
    Xorshift32,
    exp_neg,
    exp_neg_q16,
    from_q16,
    to_q16,
)


class TestQ16Conversion:
    def test_roundtrip_exact_for_representable(self):
        assert from_q16(to_q16(0.5)) == 0.5
        assert from_q16(ONE_Q16) == 1.0

    @given(st.floats(min_value=-100.0, max_value=100.0))
    def test_roundtrip_error_bounded(self, x):
        assert abs(from_q16(to_q16(x)) - x) <= 0.5 / ONE_Q16 + 1e-12


class TestXorshift32:
    def test_deterministic(self):
        a = Xorshift32(seed=123)
        b = Xorshift32(seed=123)
        assert [a.randi() for _ in range(10)] == [b.randi() for _ in range(10)]

    def test_zero_seed_remapped(self):
        rng = Xorshift32(seed=0)
        assert rng.state != 0
        assert rng.randi() != 0

    def test_range_is_32bit(self):
        rng = Xorshift32(seed=7)
        for _ in range(1000):
            value = rng.randi()
            assert 0 <= value < 2 ** 32

    def test_randi_range_bounds(self):
        rng = Xorshift32(seed=9)
        for _ in range(1000):
            value = rng.randi_range(5, 17)
            assert 5 <= value < 17

    def test_randi_range_negative_low(self):
        rng = Xorshift32(seed=11)
        values = [rng.randi_range(-10, 10) for _ in range(2000)]
        assert min(values) < 0 < max(values)

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            Xorshift32().randi_range(5, 5)

    def test_roughly_uniform(self):
        rng = Xorshift32(seed=13)
        buckets = [0] * 8
        for _ in range(8000):
            buckets[rng.randi_range(0, 8)] += 1
        for count in buckets:
            assert 800 <= count <= 1200

    def test_full_period_no_short_cycle(self):
        rng = Xorshift32(seed=42)
        start = rng.state
        for _ in range(10000):
            rng.randi()
            assert rng.state != start or False  # no cycle in 10k draws


class TestExpNeg:
    def test_exact_at_zero(self):
        assert exp_neg_q16(0) == ONE_Q16

    @pytest.mark.parametrize("x", [0.0, 0.1, 0.5, 1.0, 2.0, 3.5, 5.0, 8.0, 10.0])
    def test_absolute_error_bound(self, x):
        assert abs(exp_neg(x) - math.exp(-x)) < 0.004

    @given(st.floats(min_value=0.0, max_value=11.0))
    def test_error_bound_property(self, x):
        assert abs(exp_neg(x) - math.exp(-x)) < 0.004

    @given(st.floats(min_value=0.0, max_value=10.0), st.floats(min_value=0.0, max_value=1.0))
    def test_monotone_decreasing(self, x, dx):
        assert exp_neg_q16(to_q16(x + dx)) <= exp_neg_q16(to_q16(x))

    def test_underflow_to_zero(self):
        assert exp_neg(11.5) == 0.0
        assert exp_neg_q16(to_q16(50.0)) == 0.0

    def test_negative_argument_rejected(self):
        with pytest.raises(ValueError):
            exp_neg(-1.0)
        with pytest.raises(ValueError):
            exp_neg_q16(-1)

    def test_output_in_unit_interval(self):
        for i in range(0, 12 * ONE_Q16, ONE_Q16 // 7):
            value = exp_neg_q16(i)
            assert 0 <= value <= ONE_Q16
