"""Run metrics: the quantities the paper's figures are built from.

The headline metric is **energy efficiency** — throughput per Watt,
equivalently instructions per Joule (Eq. 10/11 optimise its per-core
weighted sum; the figures report the whole-chip value).  A
:class:`RunResult` aggregates a full simulation, and keeps a per-epoch
history so experiments can plot convergence and count migrations.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class EpochRecord:
    """Aggregate outcome of one SmartBalance epoch (or epoch-equivalent
    window under a baseline balancer)."""

    epoch_index: int
    start_time_s: float
    duration_s: float
    instructions: float
    energy_j: float
    migrations: int
    #: Wall-clock seconds the balancer itself spent deciding (overhead).
    balancer_time_s: float

    @property
    def degenerate(self) -> bool:
        """True when the epoch's energy accounting is unusable.

        ``energy_j <= 0`` (every core offline, or a zero-length window)
        makes ``ips_per_watt`` report 0.0 — a value that must not be
        averaged into efficiency figures as if the chip did work for
        free.  Consumers filter on this flag; the observability layer
        counts and flags such epochs instead of silently zeroing them.
        """
        return self.energy_j <= 0

    @property
    def ips_per_watt(self) -> float:
        """Energy efficiency over the epoch (instructions per Joule).

        0.0 for degenerate epochs — check :attr:`degenerate` before
        treating that as a real efficiency.
        """
        return self.instructions / self.energy_j if self.energy_j > 0 else 0.0


@dataclass(frozen=True)
class CoreStats:
    """Lifetime per-core accounting."""

    core_id: int
    core_type_name: str
    instructions: float
    energy_j: float
    busy_s: float
    idle_s: float
    sleep_s: float
    #: Peak junction temperature (deg C); None when the run had the
    #: thermal model disabled.
    peak_temp_c: "float | None" = None

    @property
    def utilisation(self) -> float:
        total = self.busy_s + self.idle_s + self.sleep_s
        return self.busy_s / total if total > 0 else 0.0


@dataclass(frozen=True)
class ResilienceStats:
    """Fault-injection and graceful-degradation accounting for a run.

    The injection side counts what the fault models actually did; the
    defence side counts what the resilience layer did about it.  A
    mitigated run under faults shows both sides non-zero; a clean run
    shows all zeros.
    """

    # -- injection side (what the FaultPlan inflicted) ----------------
    sensor_dropouts: int = 0
    sensor_stuck: int = 0
    sensor_spikes: int = 0
    counter_wraps: int = 0
    counter_saturations: int = 0
    migrations_lost: int = 0
    migrations_delayed: int = 0
    hotplug_events: int = 0
    throttle_events: int = 0
    # -- defence side (what the resilience layer did) -----------------
    samples_rejected: int = 0
    rejects_by_reason: "dict[str, int]" = field(default_factory=dict)
    fallback_rows_used: int = 0
    threads_dropped: int = 0
    samples_rebaselined: int = 0
    watchdog_trips: int = 0
    watchdog_fallback_epochs: int = 0
    truncated_epochs: int = 0
    budget_skipped_epochs: int = 0
    hotplug_masked_epochs: int = 0
    #: Placements the kernel refused because the target was offline.
    offline_placements_blocked: int = 0
    # -- adaptation side (online model maintenance) -------------------
    drift_detections: int = 0
    model_updates: int = 0
    model_rollbacks: int = 0
    #: Watchdog trips resolved by an online re-fit (repair before
    #: fallback) instead of capability placement.
    watchdog_repairs: int = 0

    @property
    def faults_injected(self) -> int:
        """Total fault events the plan actually delivered."""
        return (
            self.sensor_dropouts
            + self.sensor_stuck
            + self.sensor_spikes
            + self.counter_wraps
            + self.counter_saturations
            + self.migrations_lost
            + self.migrations_delayed
            + self.hotplug_events
            + self.throttle_events
        )


@dataclass(frozen=True)
class RunResult:
    """Complete outcome of one simulated run."""

    balancer_name: str
    platform_name: str
    duration_s: float
    instructions: float
    energy_j: float
    migrations: int
    epochs: tuple[EpochRecord, ...]
    core_stats: tuple[CoreStats, ...]
    #: Per-task (tid, name, instructions, busy_s, energy_j).
    task_stats: tuple["TaskStats", ...] = ()
    #: Fault/defence accounting; None when the run injected no faults
    #: and the balancer reported no health telemetry.
    resilience: "ResilienceStats | None" = None
    #: Wall-clock balancer phase breakdown, ``((phase, seconds), ...)``
    #: — e.g. sense/predict/balance for SmartBalance (Fig. 7).  Host
    #: time, not simulation time: excluded from the determinism
    #: fingerprint like ``EpochRecord.balancer_time_s``.
    phase_times: tuple[tuple[str, float], ...] = ()
    #: How many executions it took to produce this result (1 = first
    #: try; >1 means ``on_error="retry"`` recovered a crashed worker).
    #: Host-side execution telemetry, excluded from the determinism
    #: fingerprint like ``phase_times``.
    attempts: int = 1
    #: Governor (joint placement + DVFS) accounting — strategy, OPP
    #: switch counts, final per-cluster levels.  ``None`` for every
    #: non-governor balancer, and serialised only when present so
    #: ``governor="fixed"`` results stay byte-identical.
    governor: "dict | None" = None
    #: Scenario accounting (repro.scenarios) — request latency
    #: percentiles and SLO misses for open-loop traffic, barrier stall
    #: totals and makespan for barrier groups, co-running core set for
    #: SMT.  ``None`` for every scenario-free run, and serialised only
    #: when present so ``scenario="none"`` results stay byte-identical.
    scenario: "dict | None" = None

    @property
    def ips_per_watt(self) -> float:
        """Whole-run energy efficiency (instructions per Joule).

        Instructions-per-Joule equals average-IPS per average-Watt, the
        paper's 'throughput/Watt'.
        """
        return self.instructions / self.energy_j if self.energy_j > 0 else 0.0

    @property
    def average_power_w(self) -> float:
        return self.energy_j / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def average_ips(self) -> float:
        return self.instructions / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def balancer_overhead_s(self) -> float:
        """Total wall-clock time spent inside the balancer."""
        return sum(e.balancer_time_s for e in self.epochs)

    @property
    def degenerate_epochs(self) -> int:
        """Epochs whose energy accounting was unusable (see
        :attr:`EpochRecord.degenerate`)."""
        return sum(1 for e in self.epochs if e.degenerate)

    def improvement_over(self, baseline: "RunResult") -> float:
        """Percent energy-efficiency improvement relative to ``baseline``."""
        if baseline.ips_per_watt <= 0:
            raise ValueError("baseline has non-positive energy efficiency")
        return 100.0 * (self.ips_per_watt / baseline.ips_per_watt - 1.0)


@dataclass(frozen=True)
class TaskStats:
    """Lifetime per-task accounting."""

    tid: int
    name: str
    instructions: float
    busy_s: float
    energy_j: float
    migrations: int
