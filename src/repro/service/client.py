"""Thin synchronous client for the job service.

Stdlib ``http.client`` only — the client side must be as
dependency-free as the server.  One request per connection (matching
the server's ``Connection: close`` policy); the NDJSON event stream is
exposed as a plain generator of dicts.

Typical use::

    from repro.runner import RunSpec
    from repro.service import Client

    client = Client(port=8642)
    (job,) = client.submit(RunSpec(workload="MTMI", threads=4))
    result = client.wait_result(job["id"])      # a real RunResult
    for event in client.events(job["id"]):      # or stream while it runs
        ...

Errors surface as :class:`ServiceError` carrying the HTTP status and
the server's JSON error body — a 429 additionally exposes
``retry_after_s`` so callers can implement polite backoff.

The client defends itself against an unhealthy service: connect and
read timeouts are separate knobs (a server that accepts the TCP
connection but never answers trips the read timeout instead of
hanging forever), and every request is retried up to ``retries``
times with the runner's deterministic exponential backoff.  A 429
response is retried honouring the server's ``Retry-After`` when it is
longer than the backoff step; the final attempt re-raises.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Iterator, Optional, Sequence, Union

from repro.kernel.metrics import RunResult
from repro.runner.engine import retry_delays
from repro.runner.env import resolve_service_port
from repro.runner.serialize import result_from_dict
from repro.runner.spec import RunSpec
from repro.service.api import payload_from_spec
from repro.service.scheduler import TERMINAL_STATES

SpecLike = Union[RunSpec, dict]


class ServiceError(Exception):
    """An HTTP error response from the service."""

    def __init__(self, status: int, payload: object,
                 retry_after_s: Optional[float] = None) -> None:
        message = payload.get("error") if isinstance(payload, dict) else str(payload)
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload
        self.retry_after_s = retry_after_s


class Client:
    """Synchronous HTTP client bound to one service address."""

    def __init__(self, host: str = "127.0.0.1", port: Optional[int] = None,
                 timeout_s: float = 60.0,
                 connect_timeout_s: Optional[float] = None,
                 read_timeout_s: Optional[float] = None,
                 retries: int = 2,
                 retry_base_s: float = 0.2) -> None:
        """``timeout_s`` is the legacy single knob; ``connect_timeout_s``
        and ``read_timeout_s`` override it per phase when given.
        ``retries`` bounds re-attempts after transport errors and 429
        responses (0 disables retrying)."""
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.host = host
        self.port = resolve_service_port(port)
        self.timeout_s = timeout_s
        self.connect_timeout_s = (
            connect_timeout_s if connect_timeout_s is not None else timeout_s
        )
        self.read_timeout_s = (
            read_timeout_s if read_timeout_s is not None else timeout_s
        )
        self.retries = retries
        self.retry_base_s = retry_base_s
        #: Seam for tests: replace to observe/skip the backoff sleeps.
        self._sleep = time.sleep

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        # The HTTPConnection timeout governs the TCP connect; the read
        # timeout is applied to the established socket in _apply_read_timeout.
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.connect_timeout_s
        )

    def _apply_read_timeout(self,
                            connection: http.client.HTTPConnection) -> None:
        """Re-arm the socket for the response-read phase.

        A server that accepts the connection but never responds then
        raises ``socket.timeout`` after ``read_timeout_s`` instead of
        blocking on the (possibly much longer) connect timeout."""
        if connection.sock is not None:
            connection.sock.settimeout(self.read_timeout_s)

    def _request(self, method: str, path: str,
                 payload: Optional[dict] = None) -> dict:
        """One API call with bounded retry.

        Transport failures (refused, reset, connect/read timeout) and
        429 responses are retried up to ``retries`` times on the
        deterministic :func:`repro.runner.engine.retry_delays` schedule;
        a 429 waits at least the server's ``Retry-After``.  Any other
        HTTP error raises immediately — the server answered, so
        retrying would just repeat the refusal.
        """
        delays = retry_delays(self.retries, self.retry_base_s)
        attempt = 0
        while True:
            try:
                return self._request_once(method, path, payload)
            except ServiceError as exc:
                if exc.status != 429 or attempt >= self.retries:
                    raise
                delay = delays[attempt]
                if exc.retry_after_s is not None:
                    delay = max(delay, exc.retry_after_s)
                self._sleep(delay)
            except (OSError, http.client.HTTPException):
                if attempt >= self.retries:
                    raise
                self._sleep(delays[attempt])
            attempt += 1

    def _request_once(self, method: str, path: str,
                      payload: Optional[dict] = None) -> dict:
        connection = self._connection()
        try:
            body = None
            headers = {}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            self._apply_read_timeout(connection)
            response = connection.getresponse()
            raw = response.read()
            try:
                document = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                document = {"error": raw.decode("utf-8", "replace")}
            if response.status >= 400:
                retry_after = response.getheader("Retry-After")
                raise ServiceError(
                    response.status, document,
                    retry_after_s=float(retry_after) if retry_after else None,
                )
            return document
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # Jobs
    # ------------------------------------------------------------------

    def submit(self, specs: Union[SpecLike, Sequence[SpecLike]],
               priority: int = 0,
               timeout_s: Optional[float] = None) -> "list[dict]":
        """Submit one spec or a sweep; returns the accepted job dicts.

        A full queue raises :class:`ServiceError` with status 429 and
        ``retry_after_s`` set — sweeps refused part-way report the
        already-accepted jobs in ``error.payload["accepted"]``.
        """
        if isinstance(specs, (RunSpec, dict)):
            specs = [specs]
        payloads = [
            payload_from_spec(s) if isinstance(s, RunSpec) else s
            for s in specs
        ]
        body: dict = {"priority": priority}
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        if len(payloads) == 1:
            body["spec"] = payloads[0]
        else:
            body["specs"] = payloads
        return self._request("POST", "/v1/jobs", body)["jobs"]

    def status(self, job_id: str) -> dict:
        """Current job dict (includes ``result`` once done)."""
        return self._request("GET", f"/v1/jobs/{job_id}")

    def jobs(self) -> "list[dict]":
        return self._request("GET", "/v1/jobs")["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/v1/jobs/{job_id}/cancel")

    def wait(self, job_id: str, timeout_s: Optional[float] = None,
             poll_s: float = 0.05) -> dict:
        """Poll until the job is terminal; returns its final dict."""
        deadline = None if timeout_s is None else time.monotonic() + timeout_s
        while True:
            document = self.status(job_id)
            if document["status"] in TERMINAL_STATES:
                return document
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"job {job_id} still {document['status']} "
                    f"after {timeout_s}s"
                )
            time.sleep(poll_s)

    def result(self, job_id: str) -> RunResult:
        """The finished job's :class:`RunResult` (raises if not done)."""
        document = self.status(job_id)
        if document["status"] != "done":
            raise ServiceError(
                409, {"error": f"job {job_id} is {document['status']}, "
                               f"not done ({document.get('error')})"}
            )
        return result_from_dict(document["result"])

    def wait_result(self, job_id: str,
                    timeout_s: Optional[float] = None) -> RunResult:
        """Block until done and decode the result in one call."""
        document = self.wait(job_id, timeout_s=timeout_s)
        if document["status"] != "done":
            raise ServiceError(
                409, {"error": f"job {job_id} ended {document['status']}: "
                               f"{document.get('error')}"}
            )
        return result_from_dict(document["result"])

    def run(self, spec: SpecLike, priority: int = 0,
            timeout_s: Optional[float] = None,
            wait_timeout_s: Optional[float] = None) -> RunResult:
        """Submit one spec and block for its result."""
        (job,) = self.submit(spec, priority=priority, timeout_s=timeout_s)
        return self.wait_result(job["id"], timeout_s=wait_timeout_s)

    def events(self, job_id: str) -> Iterator[dict]:
        """Stream the job's NDJSON event feed (buffered + live)."""
        connection = self._connection()
        try:
            connection.request("GET", f"/v1/jobs/{job_id}/events")
            self._apply_read_timeout(connection)
            response = connection.getresponse()
            if response.status >= 400:
                raw = response.read()
                try:
                    document = json.loads(raw)
                except json.JSONDecodeError:
                    document = {"error": raw.decode("utf-8", "replace")}
                raise ServiceError(response.status, document)
            while True:
                line = response.readline()
                if not line:
                    break
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            connection.close()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict:
        """The service MetricsRegistry snapshot (JSON form)."""
        return self._request("GET", "/metricz?format=json")

    def catalogue(self) -> dict:
        """Resolvable names, as served by ``GET /v1/catalogue``."""
        return self._request("GET", "/v1/catalogue")
