"""Dispatcher defence stack: circuit breakers, rescue, hedging,
exactly-once, quorum degradation — driven directly, no sim loop."""

import dataclasses

from repro.fleet import Dispatcher, FleetSpec, NodeTelemetry, analytic_profiles
from repro.fleet.dispatcher import _CircuitBreaker
from repro.obs import ObsContext
from repro.obs import events as ev

HB = 0.25


def _dispatcher(obs=None, **overrides):
    spec = FleetSpec(profile="analytic", **overrides)
    profiles = analytic_profiles(spec)
    platforms = dict(enumerate(spec.nodes))
    return spec, Dispatcher(spec, profiles, platforms,
                            obs=obs if obs is not None else ObsContext())


def _beat(dispatcher, node, now, ipw=None):
    nominal = dispatcher.profiles.nominal_ips_per_watt(
        dispatcher.platforms[node])
    dispatcher.on_heartbeat(
        NodeTelemetry(node=node, t_s=now,
                      ips_per_watt=ipw if ipw is not None else nominal,
                      queue_depth=0, busy=False),
        now,
    )


def _beat_all(dispatcher, now, nodes=None):
    for node in nodes if nodes is not None else sorted(dispatcher.platforms):
        _beat(dispatcher, node, now)


def test_submit_dispatches_exactly_one_attempt():
    spec, dispatcher = _dispatcher()
    _beat_all(dispatcher, HB)
    job = spec.jobs()[0]
    actions = dispatcher.submit(job, HB)
    assert len(actions) == 1 and actions[0].kind == "dispatch"
    record = dispatcher.ledger[job.job_id]
    assert len(record.attempts) == 1
    assert record.first_dispatch_s == HB


def test_completion_is_exactly_once_under_duplicates():
    obs = ObsContext()
    spec, dispatcher = _dispatcher(obs=obs)
    _beat_all(dispatcher, HB)
    job = spec.jobs()[0]
    (action,) = dispatcher.submit(job, HB)
    dispatcher.on_complete(job.job_id, action.node, 1, 1.0)
    # The same completion arrives again (partition replay / hedge race).
    dispatcher.on_complete(job.job_id, action.node, 1, 1.5)
    assert dispatcher.stats.completions == 1
    assert dispatcher.stats.duplicates == 1
    completes = obs.tracer.by_type(ev.FLEET_COMPLETE)
    assert [e["duplicate"] for e in completes] == [False, True]
    suppressed = [e for e in obs.tracer.by_type(ev.MITIGATION)
                  if e["kind"] == "duplicate_suppressed"]
    assert len(suppressed) == 1


def test_node_death_rescues_and_reroutes_outstanding_jobs():
    obs = ObsContext()
    # hedge_factor is huge so the hedger cannot rescue the job first —
    # this test exercises the failure-detector path in isolation.
    spec, dispatcher = _dispatcher(obs=obs, hedge_factor=100.0)
    _beat_all(dispatcher, HB)
    job = spec.jobs()[0]
    (action,) = dispatcher.submit(job, HB)
    victim = action.node
    # Every node but the victim keeps beating until the victim is DOWN.
    survivors = [n for n in sorted(dispatcher.platforms) if n != victim]
    actions = []
    now = HB
    while dispatcher.detector.state(victim) != "down":
        now += HB
        _beat_all(dispatcher, now, nodes=survivors)
        actions.extend(dispatcher.tick(now))
    retries = [a for a in actions if a.kind == "retry"]
    assert len(retries) == 1 and retries[0].job.job_id == job.job_id
    assert retries[0].at_s > now, "backoff pushes the retry into the future"
    (down_event,) = obs.tracer.by_type(ev.NODE_DOWN)
    assert down_event["node"] == victim
    assert down_event["jobs_rescued"] == 1
    # Firing the retry re-dispatches to a survivor and logs the reroute.
    redispatch = dispatcher.retry(job.job_id, retries[0].at_s, "node_down")
    assert redispatch[0].kind == "dispatch"
    assert redispatch[0].node != victim
    (reroute,) = obs.tracer.by_type(ev.REROUTE)
    assert reroute["cause"] == "node_down"
    assert reroute["to_node"] == redispatch[0].node


def test_retries_are_bounded_job_fails_after_max_attempts():
    spec, dispatcher = _dispatcher(max_attempts=2)
    _beat_all(dispatcher, HB)
    job = spec.jobs()[0]
    dispatcher.submit(job, HB)
    record = dispatcher.ledger[job.job_id]
    for a in record.attempts:
        a.status = "rescued"
    dispatcher.retry(job.job_id, 1.0, "node_down")          # attempt 2
    for a in record.attempts:
        a.status = "rescued"
    assert dispatcher.retry(job.job_id, 2.0, "node_down") == []
    assert record.failed
    assert dispatcher.stats.failed == 1
    # A late completion still wins: fail is only terminal until then.
    dispatcher.on_complete(job.job_id, record.attempts[0].node, 1, 3.0)
    assert record.completed and not record.failed


def test_hedging_fires_once_per_attempt_and_respects_cap():
    obs = ObsContext()
    spec, dispatcher = _dispatcher(obs=obs, hedge_factor=1.5, max_attempts=2)
    _beat_all(dispatcher, HB)
    job = spec.jobs()[0]
    (action,) = dispatcher.submit(job, HB)
    horizon = dispatcher.ledger[job.job_id].attempts[0].expected_s - HB
    late = HB + 2.0 * horizon  # past hedge_factor x expected age
    _beat_all(dispatcher, late)
    actions = dispatcher.tick(late)
    dispatches = [a for a in actions if a.kind == "dispatch"]
    assert len(dispatches) == 1, "hedge dispatched immediately"
    assert dispatcher.stats.hedges == 1
    hedges = [e for e in obs.tracer.by_type(ev.MITIGATION)
              if e["kind"] == "hedged_dispatch"]
    assert len(hedges) == 1 and hedges[0]["node"] == action.node
    # max_attempts reached: no further hedges, ever.
    much_later = late + 10 * horizon
    _beat_all(dispatcher, much_later)
    assert dispatcher.tick(much_later) == []
    assert dispatcher.stats.hedges == 1


def test_quorum_loss_degrades_to_round_robin_and_emits_once():
    obs = ObsContext()
    spec, dispatcher = _dispatcher(obs=obs, quorum=0.75)
    # Only 2 of 4 nodes ever report telemetry: quorum (0.75) is unmet.
    _beat_all(dispatcher, HB, nodes=[0, 1])
    jobs = spec.jobs()
    picked = []
    for i, job in enumerate(jobs[:4]):
        (action,) = dispatcher.submit(job, HB + 0.01 * i)
        picked.append(action.node)
    assert dispatcher.stats.degraded_dispatches == 4
    assert picked == sorted(dispatcher.platforms), "round-robin over all nodes"
    degraded = [e for e in obs.tracer.by_type(ev.MITIGATION)
                if e["kind"] == "quorum_degraded"]
    assert len(degraded) == 1, "transition logged once, not per dispatch"


def test_circuit_breaker_state_machine():
    breaker = _CircuitBreaker(threshold=2, cooldown_s=1.0)
    assert breaker.available(0.0)
    assert not breaker.on_failure(0.0), "one failure stays closed"
    assert breaker.on_failure(0.1), "threshold opens the circuit"
    assert not breaker.available(0.5), "cooling down"
    assert breaker.available(1.2), "cooldown elapsed: half-open probe"
    assert breaker.on_dispatch("probe-job", 1.2), "first dispatch is the probe"
    assert not breaker.available(1.3), "one probe at a time"
    assert breaker.on_success() == "probe-job"
    assert breaker.state == "closed"
    # Failure during half-open reopens with a fresh cooldown.
    breaker.on_failure(2.0)
    breaker.on_failure(2.0)
    breaker.on_dispatch("p2", 3.1)
    assert breaker.on_failure(3.2), "probe failure reopens"
    assert not breaker.available(3.5)


def test_telemetry_rejection_emits_mitigation():
    obs = ObsContext()
    spec, dispatcher = _dispatcher(obs=obs)
    nominal = dispatcher.profiles.nominal_ips_per_watt(
        dispatcher.platforms[0])
    _beat(dispatcher, 0, HB, ipw=nominal * 100)
    assert dispatcher.stats.telemetry_rejected == 1
    rejected = [e for e in obs.tracer.by_type(ev.MITIGATION)
                if e["kind"] == "telemetry_rejected"]
    assert len(rejected) == 1 and rejected[0]["node"] == 0


def test_recovered_node_emits_node_up():
    obs = ObsContext()
    spec, dispatcher = _dispatcher(obs=obs)
    now = HB
    while dispatcher.detector.state(0) != "down":
        now += HB
        _beat_all(dispatcher, now, nodes=[1, 2, 3])
        dispatcher.tick(now)
    _beat(dispatcher, 0, now + HB)
    ups = obs.tracer.by_type(ev.NODE_UP)
    recoveries = [e for e in ups if e.get("detail") != "boot"]
    assert len(recoveries) == 1
    assert recoveries[0]["node"] == 0
    assert "down" in recoveries[0]["detail"]
    assert dispatcher.detector.state(0) == "up"


def test_spec_knobs_flow_through():
    spec = FleetSpec(profile="analytic", circuit_threshold=7,
                     circuit_cooldown_s=9.0)
    dispatcher = Dispatcher(spec, analytic_profiles(spec),
                            dict(enumerate(spec.nodes)))
    breaker = dispatcher._breakers[0]
    assert breaker.threshold == 7 and breaker.cooldown_s == 9.0
    assert dataclasses.asdict(spec)["circuit_threshold"] == 7
