"""Governor experiment: joint placement + DVFS vs fixed-V/f baselines.

The paper's SmartBalance balances threads at fixed nominal operating
points; :mod:`repro.governor` extends the same sense→predict→balance
loop to choose *(thread allocation, per-cluster OPP vector)* jointly.
This experiment measures what that buys, per workload, against the
baselines that bracket it:

* ``fixed`` — the stock balancer (every cluster at its nominal OPP):
  the paper's configuration and the race-to-idle end of the spectrum.
* ``pinned:<l>`` — every cluster statically pinned at ladder level
  ``l`` for the whole run (placement still optimised per epoch).  The
  best of these plus ``fixed`` is the **oracle static OPP**: the best
  single operating-point vector knowable only in hindsight.
* ``two_level`` — the outer-ladder-search governor.
* ``coupled_anneal`` — the single-annealer governor whose move set
  mixes thread swaps and OPP steps.

Every run shares platform, workload, seed and epoch count, so the
columns differ only in the governor strategy.  The headline findings
are the J_E (IPS/Watt) gain of the dynamic governors over ``fixed``
and over the oracle static OPP — a dynamic governor that cannot beat
the best *static* setting is just a slower way to configure the chip.

The sweep is a Pareto scan as well: the table reports throughput and
power alongside J_E, so throughput-vs-power trade-offs (e.g.
``pinned:0`` saving power by starving IPS) stay visible instead of
being collapsed into the ratio.
"""

from __future__ import annotations

from typing import Optional

from repro.analysis.reporting import ExperimentResult, Finding
from repro.experiments.common import QUICK, Scale, run_cases
from repro.runner.spec import RunSpec

#: Platform of the sweep: the paper's quad HMP re-clustered one V/f
#: knob per core type (see ``repro.runner.factories.dvfs_quad``).
PLATFORM = "dvfsquad"

#: Threads per run.
N_THREADS = 8

#: Simulation seed shared by every cell.
SEED = 0

#: Static pin levels bracketing the ladder (level 3 is nominal ==
#: ``fixed``, so it is not re-run).
PIN_LEVELS = (0, 1, 2)

#: The dynamic strategies under test.
DYNAMIC = ("two_level", "coupled_anneal")


def governor_specs(scale: Scale) -> "list[RunSpec]":
    """One spec per (workload, strategy) cell of the sweep."""
    strategies = ["fixed"]
    strategies += [f"pinned:{level}" for level in PIN_LEVELS]
    strategies += list(DYNAMIC)
    return [
        RunSpec(
            workload=workload,
            platform=PLATFORM,
            threads=N_THREADS,
            balancer="smartbalance",
            n_epochs=scale.n_epochs,
            seed=SEED,
            governor=strategy,
        )
        for workload in scale.imb_configs
        for strategy in strategies
    ]


def compare(
    scale: Scale = QUICK,
    jobs: Optional[int] = None,
    cache=None,
) -> dict:
    """Run the sweep and fold it into a JSON-ready comparison dict."""
    specs = governor_specs(scale)
    results = run_cases(specs, jobs=jobs, cache=cache)
    cells: "dict[str, dict[str, dict]]" = {}
    for spec, result in zip(specs, results):
        stats = result.governor or {}
        cells.setdefault(spec.workload, {})[spec.governor] = {
            "ips_per_watt": result.ips_per_watt,
            "ips": result.average_ips,
            "power_w": result.average_power_w,
            "energy_j": result.energy_j,
            "opp_changes": stats.get("opp_changes", 0),
            "transition_energy_j": stats.get("transition_energy_j", 0.0),
        }

    statics = ["fixed"] + [f"pinned:{level}" for level in PIN_LEVELS]
    workloads = {}
    for workload, row in cells.items():
        fixed_je = row["fixed"]["ips_per_watt"]
        oracle = max(statics, key=lambda s: row[s]["ips_per_watt"])
        oracle_je = row[oracle]["ips_per_watt"]
        workloads[workload] = {
            "cells": row,
            "oracle_static": oracle,
            "gain_vs_fixed_pct": {
                s: 100.0 * (row[s]["ips_per_watt"] / fixed_je - 1.0)
                for s in row
            },
            "gain_vs_oracle_pct": {
                s: 100.0 * (row[s]["ips_per_watt"] / oracle_je - 1.0)
                for s in DYNAMIC
            },
        }

    def mean_gain(strategy: str, against: str) -> float:
        gains = [
            workloads[w][against][strategy] for w in workloads
        ]
        return sum(gains) / len(gains) if gains else 0.0

    return {
        "n_epochs": scale.n_epochs,
        "platform": PLATFORM,
        "threads": N_THREADS,
        "workloads": workloads,
        "mean_gain_vs_fixed_pct": {
            s: mean_gain(s, "gain_vs_fixed_pct") for s in DYNAMIC
        },
        "mean_gain_vs_oracle_pct": {
            s: mean_gain(s, "gain_vs_oracle_pct") for s in DYNAMIC
        },
    }


def run(
    scale: Scale = QUICK,
    jobs: Optional[int] = None,
    cache=None,
) -> ExperimentResult:
    """Governor sweep: J_E / IPS / power per (workload, strategy)."""
    data = compare(scale, jobs=jobs, cache=cache)
    rows = []
    for workload in sorted(data["workloads"]):
        entry = data["workloads"][workload]
        for strategy in sorted(entry["cells"]):
            cell = entry["cells"][strategy]
            marker = " *" if strategy == entry["oracle_static"] else ""
            rows.append(
                [
                    workload,
                    strategy + marker,
                    f"{cell['ips_per_watt']:.4e}",
                    f"{cell['ips']:.4e}",
                    round(cell["power_w"], 3),
                    round(entry["gain_vs_fixed_pct"][strategy], 1),
                    cell["opp_changes"],
                ]
            )
    two_level_gain = data["mean_gain_vs_fixed_pct"]["two_level"]
    coupled_gain = data["mean_gain_vs_fixed_pct"]["coupled_anneal"]
    return ExperimentResult(
        experiment_id="governor",
        title=(
            "Joint placement + DVFS governor vs fixed-V/f SmartBalance "
            f"({data['platform']}, {data['threads']} threads, "
            f"{data['n_epochs']} epochs)"
        ),
        headers=[
            "workload",
            "strategy",
            "IPS/W",
            "IPS",
            "power W",
            "vs fixed %",
            "OPP switches",
        ],
        rows=rows,
        findings=(
            Finding(
                name="two_level mean J_E gain vs fixed V/f",
                measured=two_level_gain,
                unit="%",
            ),
            Finding(
                name="coupled_anneal mean J_E gain vs fixed V/f",
                measured=coupled_gain,
                unit="%",
            ),
            Finding(
                name="two_level mean J_E gain vs oracle static OPP",
                measured=data["mean_gain_vs_oracle_pct"]["two_level"],
                unit="%",
            ),
            Finding(
                name="coupled_anneal mean J_E gain vs oracle static OPP",
                measured=data["mean_gain_vs_oracle_pct"]["coupled_anneal"],
                unit="%",
            ),
        ),
        notes=(
            "All cells share seed, workload and epoch count; only the "
            "governor strategy differs.  '*' marks the oracle static "
            "OPP (best of fixed + every pinned level, knowable only in "
            "hindsight).  pinned levels trade throughput for power "
            "without sensing; the dynamic governors pick per-cluster "
            "levels from the same epoch sensing the placement already "
            "uses, so gains over the oracle static column are pure "
            "workload-adaptivity."
        ),
    )


def main() -> None:
    from repro.obs import user_output

    user_output(run().render())


if __name__ == "__main__":
    main()
