"""Tests for the RC thermal model and thermal-aware weighting."""

import pytest

from repro.hardware import power
from repro.hardware.features import BIG, HUGE, SMALL
from repro.hardware.thermal import (
    AMBIENT_C,
    T_JUNCTION_MAX_C,
    ThermalState,
    leakage_multiplier,
    steady_state_temperature,
    thermal_capacitance,
    thermal_resistance,
    thermal_time_constant,
    thermal_weights,
)


class TestStaticModel:
    def test_smaller_core_higher_resistance(self):
        assert thermal_resistance(SMALL) > thermal_resistance(HUGE)

    def test_capacitance_scales_with_area(self):
        assert thermal_capacitance(HUGE) > thermal_capacitance(SMALL)

    def test_time_constant_uniform(self):
        assert thermal_time_constant(HUGE) == pytest.approx(
            thermal_time_constant(SMALL)
        )

    def test_steady_state_at_zero_power_is_ambient(self):
        assert steady_state_temperature(BIG, 0.0) == AMBIENT_C

    def test_steady_state_linear_in_power(self):
        t1 = steady_state_temperature(BIG, 1.0)
        t2 = steady_state_temperature(BIG, 2.0)
        assert t2 - AMBIENT_C == pytest.approx(2 * (t1 - AMBIENT_C))

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            steady_state_temperature(BIG, -1.0)

    def test_huge_at_peak_power_runs_hot(self):
        temp = steady_state_temperature(HUGE, power.peak_power(HUGE))
        assert temp > 75.0


class TestLeakageMultiplier:
    def test_unity_at_ambient(self):
        assert leakage_multiplier(AMBIENT_C) == pytest.approx(1.0)

    def test_doubles_per_step(self):
        assert leakage_multiplier(AMBIENT_C + 25.0) == pytest.approx(2.0)

    def test_below_ambient_reduces(self):
        assert leakage_multiplier(AMBIENT_C - 25.0) == pytest.approx(0.5)


class TestThermalState:
    def test_starts_at_ambient(self):
        state = ThermalState(core=BIG)
        assert state.temp_c == AMBIENT_C
        assert not state.over_limit

    def test_converges_to_steady_state(self):
        state = ThermalState(core=BIG)
        target = steady_state_temperature(BIG, 1.0)
        for _ in range(1000):
            state.step(1.0, 0.01)
        assert state.temp_c == pytest.approx(target, rel=1e-3)

    def test_long_step_stable(self):
        """The exponential integrator never overshoots, however long
        the step."""
        state = ThermalState(core=BIG)
        state.step(2.0, 1e9)
        assert state.temp_c == pytest.approx(
            steady_state_temperature(BIG, 2.0)
        )

    def test_cooling(self):
        state = ThermalState(core=BIG, temp_c=90.0)
        state.step(0.0, 1e9)
        assert state.temp_c == pytest.approx(AMBIENT_C)

    def test_peak_tracked(self):
        state = ThermalState(core=BIG)
        state.step(5.0, 1e9)
        hot = state.temp_c
        state.step(0.0, 1e9)
        assert state.peak_c == pytest.approx(hot)
        assert state.temp_c < hot

    def test_over_limit_flag(self):
        state = ThermalState(core=BIG, temp_c=T_JUNCTION_MAX_C + 1)
        assert state.over_limit

    def test_extra_leakage_zero_at_ambient(self):
        state = ThermalState(core=BIG)
        assert state.extra_leakage_w(0.2) == pytest.approx(0.0)

    def test_extra_leakage_positive_when_hot(self):
        state = ThermalState(core=BIG, temp_c=AMBIENT_C + 25)
        assert state.extra_leakage_w(0.2) == pytest.approx(0.2)

    def test_invalid_arguments_rejected(self):
        state = ThermalState(core=BIG)
        with pytest.raises(ValueError):
            state.step(-1.0, 0.1)
        with pytest.raises(ValueError):
            state.step(1.0, -0.1)
        with pytest.raises(ValueError):
            state.extra_leakage_w(-0.1)


class TestVectorisedHelpers:
    """The batch helpers must be *bit-identical* to the scalar path —
    the SoA kernel's digest contract depends on it."""

    def test_step_batch_bit_identical(self):
        import numpy as np

        from repro.hardware.thermal import decay_factor, step_batch

        cores = [HUGE, BIG, SMALL, BIG]
        dt = 0.006
        states = [
            ThermalState(core=c, temp_c=AMBIENT_C + 7.0 * i)
            for i, c in enumerate(cores)
        ]
        temps = np.array([s.temp_c for s in states])
        peaks = np.array([s.peak_c for s in states])
        r = np.array([thermal_resistance(c) for c in cores])
        decay = np.array([decay_factor(c, dt) for c in cores])
        powers = np.array([0.0, 0.5, 1.3, 2.0])
        for _ in range(200):
            temps, peaks = step_batch(temps, peaks, powers, r, decay)
            for i, state in enumerate(states):
                state.step(float(powers[i]), dt)
                assert temps[i] == state.temp_c
                assert peaks[i] == state.peak_c

    def test_extra_leakage_batch_bit_identical(self):
        import numpy as np

        from repro.hardware.thermal import extra_leakage_batch

        temps = np.array([AMBIENT_C, 52.3, 61.7, 88.9, 94.99])
        base = np.array([0.05, 0.1, 0.2, 0.4, 0.8])
        batch = extra_leakage_batch(temps, base)
        for i in range(temps.size):
            state = ThermalState(core=BIG, temp_c=float(temps[i]))
            assert batch[i] == state.extra_leakage_w(float(base[i]))

    def test_decay_factor_matches_scalar_step(self):
        from repro.hardware.thermal import decay_factor

        for core in (HUGE, BIG, SMALL):
            state = ThermalState(core=core, temp_c=70.0)
            decay = decay_factor(core, 0.006)
            expected = AMBIENT_C + (state.temp_c - AMBIENT_C) * decay
            state.step(0.0, 0.006)
            assert state.temp_c == expected

    def test_decay_factor_rejects_negative_dt(self):
        from repro.hardware.thermal import decay_factor

        with pytest.raises(ValueError):
            decay_factor(BIG, -0.001)


class TestThermalWeights:
    def test_cool_cores_full_weight(self):
        assert thermal_weights([50.0, 60.0]) == [1.0, 1.0]

    def test_hot_core_derated(self):
        weights = thermal_weights([50.0, 85.0])
        assert weights[0] == 1.0
        assert 0.0 < weights[1] < 1.0

    def test_critical_core_zeroed(self):
        assert thermal_weights([120.0]) == [0.0]

    def test_invalid_knee_rejected(self):
        with pytest.raises(ValueError):
            thermal_weights([50.0], knee_c=100.0, zero_c=90.0)


class TestKernelIntegration:
    def test_thermal_run_tracks_temperature(self):
        from repro.hardware.platform import quad_hmp
        from repro.kernel.balancers.base import NullBalancer
        from repro.kernel.simulator import SimulationConfig, System
        from repro.workload.synthetic import imb_threads

        config = SimulationConfig(thermal_enabled=True)
        system = System(quad_hmp(), imb_threads("HTLI", 8), NullBalancer(), config)
        result = system.run(n_epochs=10)
        temps = [c.peak_temp_c for c in result.core_stats]
        assert all(t is not None and t > AMBIENT_C for t in temps)
        # The Huge core works hardest and runs hottest.
        by_type = {c.core_type_name: c.peak_temp_c for c in result.core_stats}
        assert by_type["Huge"] == max(temps)

    def test_thermal_feedback_costs_energy(self):
        from repro.hardware.platform import quad_hmp
        from repro.kernel.balancers.base import NullBalancer
        from repro.kernel.simulator import SimulationConfig, System
        from repro.workload.synthetic import imb_threads

        cold = System(
            quad_hmp(), imb_threads("HTLI", 8), NullBalancer(),
            SimulationConfig(thermal_enabled=False),
        ).run(n_epochs=10)
        hot = System(
            quad_hmp(), imb_threads("HTLI", 8), NullBalancer(),
            SimulationConfig(thermal_enabled=True),
        ).run(n_epochs=10)
        assert hot.energy_j > cold.energy_j

    def test_disabled_run_reports_no_temperature(self):
        from repro.hardware.platform import quad_hmp
        from repro.kernel.balancers.base import NullBalancer
        from repro.kernel.simulator import System
        from repro.workload.synthetic import imb_threads

        system = System(quad_hmp(), imb_threads("MTMI", 2), NullBalancer())
        result = system.run(n_epochs=2)
        assert all(c.peak_temp_c is None for c in result.core_stats)

    def test_thermal_aware_balancer_runs(self):
        from repro.core.config import SmartBalanceConfig
        from repro.hardware.platform import quad_hmp
        from repro.kernel.balancers.smart import SmartBalanceKernelAdapter
        from repro.kernel.simulator import SimulationConfig, System
        from repro.workload.synthetic import imb_threads

        balancer = SmartBalanceKernelAdapter(
            config=SmartBalanceConfig(thermal_aware=True)
        )
        config = SimulationConfig(thermal_enabled=True)
        system = System(quad_hmp(), imb_threads("HTMI", 8), balancer, config)
        result = system.run(n_epochs=10)
        assert result.instructions > 0

    def test_vectorised_thermal_digest_matches_reference(self):
        """End-to-end lock: the SoA kernel's vectorised thermal path is
        digest-identical to the reference kernel's scalar ThermalState
        stepping."""
        from repro.hardware.platform import quad_hmp
        from repro.kernel.simulator import SimulationConfig, System
        from repro.runner.factories import make_balancer
        from repro.runner.serialize import metrics_digest
        from repro.workload.synthetic import imb_threads

        digests = {}
        for kernel in ("reference", "soa"):
            system = System(
                quad_hmp(),
                imb_threads("HTLI", 8),
                make_balancer("smartbalance"),
                SimulationConfig(thermal_enabled=True, kernel=kernel),
            )
            digests[kernel] = metrics_digest(system.run(n_epochs=6))
        assert digests["soa"] == digests["reference"]

    def test_thermal_aware_conflicts_with_explicit_weights(self):
        from repro.core.config import SmartBalanceConfig

        with pytest.raises(ValueError, match="thermal_aware"):
            SmartBalanceConfig(thermal_aware=True, core_weights=[1, 1, 1, 1])
