"""Fixed-point arithmetic primitives for the run-time optimizer.

Paper Section 4.3: "a straightforward floating-point implementation of
Algorithm 1 may lead to long execution times due to the high cost of
computing the probabilistic functions; we use custom fixed-point
implementations of ``rand`` and ``e^x`` that trade off performance with
uniformity (rand) and precision (e^x) without significantly
compromising the quality of the final solution."

This module provides exactly those primitives, in kernel-
implementable form (integer-only operations):

* :class:`Xorshift32` — the classic 32-bit xorshift PRNG: three shifts
  and xors per draw, no multiplies, matching ``randi()`` returning a
  uniform integer in ``[0, 2^32)`` and ``randi(x, y)`` in ``[x, y)``.
* :func:`exp_neg_q16` — ``e^-x`` for ``x >= 0`` in Q16.16 fixed point,
  via the identity ``e^-x = 2^-(x·log2 e)``: an integer shift for the
  integral part and an 8-entry lookup table with linear interpolation
  for the fractional part.  Absolute error is bounded below 0.004
  (property-tested against ``math.exp``).

The annealer can run on these primitives or on float math; the
``ablation`` benchmark compares quality and speed of the two.
"""

from __future__ import annotations

#: Number of fractional bits of the Q16.16 format.
Q = 16
#: Fixed-point one.
ONE_Q16 = 1 << Q
#: log2(e) in Q16.16.
_LOG2E_Q16 = 94548  # round(1.4426950408889634 * 65536)
#: Lookup table of 2^-(i/8) for i = 0..8, in Q16.16.
_POW2_TABLE = (
    65536,  # 2^-0
    60101,  # 2^-1/8
    55109,  # 2^-2/8
    50535,  # 2^-3/8
    46341,  # 2^-4/8
    42495,  # 2^-5/8
    38968,  # 2^-6/8
    35734,  # 2^-7/8
    32768,  # 2^-1
)

_MASK32 = 0xFFFFFFFF


class Xorshift32:
    """Marsaglia's 32-bit xorshift PRNG (integer-only, period 2^32-1).

    Deterministic for a given seed; seed 0 is remapped (xorshift's only
    fixed point is 0).
    """

    def __init__(self, seed: int = 0x9E3779B9) -> None:
        seed &= _MASK32
        self.state = seed if seed != 0 else 0x9E3779B9

    def randi(self) -> int:
        """Uniform integer in ``[0, 2^32)`` (paper's ``randi()``)."""
        x = self.state
        x ^= (x << 13) & _MASK32
        x ^= x >> 17
        x ^= (x << 5) & _MASK32
        self.state = x
        return x

    def randi_range(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high)`` (paper's ``randi(x, y)``).

        Uses the modulo reduction a kernel implementation would; the
        slight non-uniformity is part of the stated trade-off.
        """
        if high <= low:
            raise ValueError(f"empty range [{low}, {high})")
        return low + self.randi() % (high - low)


def to_q16(value: float) -> int:
    """Convert a float to Q16.16 (round to nearest)."""
    return int(round(value * ONE_Q16))


def from_q16(value: int) -> float:
    """Convert Q16.16 back to float."""
    return value / ONE_Q16


def exp_neg_q16(x_q16: int) -> int:
    """``e^-x`` in Q16.16 for ``x_q16 >= 0`` (Q16.16 input).

    Integer-only: one multiply, shifts, a 9-entry table and one linear
    interpolation.  Returns 0 for arguments where the true value
    underflows Q16.16 (x > ~11).
    """
    if x_q16 < 0:
        raise ValueError(f"exp_neg_q16 requires x >= 0, got {from_q16(x_q16)}")
    # y = x * log2(e), Q16.16
    y = (x_q16 * _LOG2E_Q16) >> Q
    int_part = y >> Q
    if int_part >= 16:
        return 0
    frac = y & (ONE_Q16 - 1)
    # Index the 2^-f table in eighths with linear interpolation.
    idx = frac >> (Q - 3)  # 0..7
    rem = frac & ((1 << (Q - 3)) - 1)
    lo = _POW2_TABLE[idx]
    hi = _POW2_TABLE[idx + 1]
    frac_val = lo + (((hi - lo) * rem) >> (Q - 3))
    return frac_val >> int_part


def exp_neg(x: float) -> float:
    """Float-in/float-out convenience wrapper around :func:`exp_neg_q16`."""
    if x < 0:
        raise ValueError(f"exp_neg requires x >= 0, got {x}")
    if x > 11.0:
        return 0.0
    return from_q16(exp_neg_q16(to_q16(x)))
