"""DVFS operating points and V/f-differentiated platforms.

Paper Section 3: "even if the cores are identical in terms of
micro-architecture but associated with different nominal frequencies,
they can be considered as distinct core types", and Section 5 notes
the approach "is not limited by the voltage and frequency of the
cores" — the evaluation simply fixes one operating point per type.

This module makes the V/f dimension usable: per-type operating-point
(OPP) tables with voltage scaling laws, helpers to derive the distinct
core types each OPP induces, and platform builders that expose DVFS as
*static heterogeneity* — e.g. a quad-core chip whose four identical
cores are pinned at four different OPPs, which SmartBalance balances
exactly like micro-architectural heterogeneity (see the
``dvfs_platform`` example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.hardware.features import CoreType
from repro.hardware.platform import Platform, build_platform
from repro.obs.log import get_logger

_log = get_logger("hardware.dvfs")

#: Voltage scaling: V(f) follows a linear law between the type's
#: nominal point and the minimum operating voltage, the standard
#: compact approximation for mobile SoC OPP tables.
MIN_OPERATING_VDD = 0.55
#: Lowest frequency an OPP table goes down to, as a fraction of nominal.
MIN_FREQ_FRACTION = 0.25

# --- OPP transition model ---------------------------------------------------
#: Voltage regulator slew rate.  Mobile PMIC buck converters ramp their
#: output in the few-to-tens of mV/us range; 10 mV/us is a standard
#: conservative figure.
VOLTAGE_RAMP_V_PER_S = 10e-3 / 1e-6
#: PLL relock / clock-switch dead time added to every frequency change.
PLL_RELOCK_S = 20e-6
#: Energy drawn from the rail per volt of supply swing per mm^2 of core
#: area (charging/discharging the distributed decap and rail network).
TRANSITION_ENERGY_J_PER_V_MM2 = 2e-4


@dataclass(frozen=True)
class OperatingPoint:
    """One DVFS operating point: frequency + matched supply voltage."""

    freq_mhz: float
    vdd: float

    def __post_init__(self) -> None:
        if self.freq_mhz <= 0:
            raise ValueError(f"freq_mhz must be positive, got {self.freq_mhz}")
        if self.vdd <= 0:
            raise ValueError(f"vdd must be positive, got {self.vdd}")


def voltage_for_frequency(
    core_type: CoreType, freq_mhz: float, strict: bool = False
) -> float:
    """Matched supply voltage for a frequency on a type's V/f curve.

    Linear interpolation between (``MIN_FREQ_FRACTION`` · f_nom,
    ``MIN_OPERATING_VDD``) and the nominal (f_nom, V_nom) point,
    clamped at the nominal voltage for over-nominal requests.

    The model has no overdrive points: a request *above* nominal cannot
    be honoured and is clamped to the nominal voltage.  Because silently
    returning nominal V for an impossible frequency has bitten callers
    before, the clamp is no longer silent — it logs a warning through
    the ``repro.hardware.dvfs`` logger, and with ``strict=True`` it
    raises ``ValueError`` instead.
    """
    if freq_mhz <= 0:
        raise ValueError(f"freq_mhz must be positive, got {freq_mhz}")
    f_nom = core_type.freq_mhz
    f_min = MIN_FREQ_FRACTION * f_nom
    if freq_mhz > f_nom:
        message = (
            f"over-nominal frequency request for {core_type.name}: "
            f"{freq_mhz:g} MHz > nominal {f_nom:g} MHz; the V/f curve "
            f"has no overdrive points"
        )
        if strict:
            raise ValueError(message)
        _log.warning("%s (clamping to nominal V=%g)", message, core_type.vdd)
        return core_type.vdd
    if freq_mhz == f_nom:
        return core_type.vdd
    if freq_mhz <= f_min:
        return MIN_OPERATING_VDD
    span = (freq_mhz - f_min) / (f_nom - f_min)
    return MIN_OPERATING_VDD + span * (core_type.vdd - MIN_OPERATING_VDD)


def opp_table(core_type: CoreType, n_points: int = 4) -> tuple[OperatingPoint, ...]:
    """An evenly-spaced OPP table from the minimum point to nominal."""
    if n_points < 1:
        raise ValueError(f"need at least one OPP, got {n_points}")
    f_nom = core_type.freq_mhz
    f_min = MIN_FREQ_FRACTION * f_nom
    if n_points == 1:
        freqs = [f_nom]
    else:
        step = (f_nom - f_min) / (n_points - 1)
        freqs = [f_min + i * step for i in range(n_points)]
    return tuple(
        OperatingPoint(freq_mhz=f, vdd=voltage_for_frequency(core_type, f))
        for f in freqs
    )


def type_at_opp(core_type: CoreType, opp: OperatingPoint) -> CoreType:
    """The distinct core type induced by pinning a type at an OPP."""
    return core_type.with_frequency(opp.freq_mhz, vdd=opp.vdd)


def opp_variants(core_type: CoreType, n_points: int = 4) -> tuple[CoreType, ...]:
    """All core types induced by a type's OPP table (ascending f)."""
    return tuple(type_at_opp(core_type, opp) for opp in opp_table(core_type, n_points))


def dvfs_platform(
    core_type: CoreType,
    n_cores: int = 4,
    n_points: int | None = None,
    name: str | None = None,
) -> Platform:
    """A platform of identical cores pinned at spread-out OPPs.

    The paper's observation in hardware form: one micro-architecture,
    ``n_cores`` cores, each at a different operating point — an
    aggressively heterogeneous platform by V/f alone.  ``n_points``
    defaults to ``n_cores`` (one OPP per core).
    """
    if n_cores < 1:
        raise ValueError(f"need at least one core, got {n_cores}")
    n_points = n_points or n_cores
    variants = opp_variants(core_type, n_points)
    counts = []
    for i in range(n_cores):
        counts.append((variants[i % len(variants)], 1))
    return build_platform(
        counts, name=name or f"dvfs-{core_type.name}-{n_cores}"
    )


def transition_latency_s(
    old: OperatingPoint, new: OperatingPoint
) -> float:
    """Dead time of one OPP change (seconds).

    Two serial contributions, per the standard cpufreq transition
    model: the voltage regulator ramps the rail at
    :data:`VOLTAGE_RAMP_V_PER_S` (up before the frequency rises, down
    after it falls — either way the core waits out the ramp), then the
    PLL relocks (:data:`PLL_RELOCK_S`).  A no-op transition costs
    nothing.
    """
    if old == new:
        return 0.0
    ramp = abs(new.vdd - old.vdd) / VOLTAGE_RAMP_V_PER_S
    return ramp + PLL_RELOCK_S


def transition_energy_j(
    core_type: CoreType, old: OperatingPoint, new: OperatingPoint
) -> float:
    """Energy overhead of one OPP change on one core (Joules).

    Dominated by re-charging the rail/decap network across the voltage
    swing (proportional to core area and ``|ΔV|``), plus the leakage
    burned while the core sits out the transition dead time.
    """
    if old == new:
        return 0.0
    from repro.hardware import power

    swing = abs(new.vdd - old.vdd) * TRANSITION_ENERGY_J_PER_V_MM2 * core_type.area_mm2
    stall = transition_latency_s(old, new) * power.leakage_power(core_type)
    return swing + stall


def energy_per_instruction(core_type: CoreType, opps: Sequence[OperatingPoint]):
    """(OPP, peak IPS, Joules/instruction) rows for an OPP table.

    The classic DVFS energy curve: lower V/f costs less energy per
    instruction (quadratic dynamic savings) until leakage-dominated
    run-time stretching wins — useful for choosing OPP spreads.
    """
    from repro.hardware import microarch, power

    rows = []
    for opp in opps:
        variant = type_at_opp(core_type, opp)
        ips = microarch.peak_ips(variant)
        watts = power.busy_power(variant, microarch.peak_ipc(variant)).total_w
        rows.append((opp, ips, watts / ips if ips > 0 else float("inf")))
    return rows
