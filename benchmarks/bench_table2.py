"""Benchmark + regeneration of Table 2 (core configurations).

Times the derived-peak computation (micro-architecture + power model
evaluation over the four core types) and writes the regenerated table
to ``benchmarks/out/table2.txt``.
"""

from repro.experiments import table2
from repro.hardware.microarch import _estimate_cached


def bench_table2(benchmark, save_artifact):
    def regenerate():
        _estimate_cached.cache_clear()
        return table2.run()

    result = benchmark(regenerate)
    save_artifact(result)
    for finding in result.findings:
        benchmark.extra_info[finding.name] = finding.measured
    assert result.finding("peak IPC Small").measured > 0
