"""Tests for the SystemView observable boundary."""

import pytest

from repro.hardware.platform import big_little_octa, quad_hmp
from repro.kernel.balancers.base import NullBalancer
from repro.kernel.simulator import SimulationConfig, System
from repro.workload.synthetic import imb_threads


def view_for(platform=None, n_threads=4, os_tasks=0):
    system = System(
        platform or quad_hmp(),
        imb_threads("MTMI", n_threads),
        NullBalancer(),
        SimulationConfig(os_noise_tasks=os_tasks),
    )
    system.run(n_epochs=2)
    return system.build_view(window_s=0.12)


class TestSystemViewHelpers:
    def test_user_tasks_filter(self):
        view = view_for(os_tasks=3)
        assert len(view.tasks) == 7
        assert len(view.user_tasks) == 4
        assert all(t.is_user for t in view.user_tasks)

    def test_tasks_on_core(self):
        view = view_for(n_threads=8)
        for core_id in range(4):
            members = view.tasks_on_core(core_id)
            assert all(t.core_id == core_id for t in members)
        total = sum(len(view.tasks_on_core(c)) for c in range(4))
        assert total == len(view.tasks)

    def test_placement_consistent_with_tasks(self):
        view = view_for()
        for task in view.tasks:
            assert view.placement[task.tid] == task.core_id

    def test_core_views_cover_platform(self):
        view = view_for(platform=big_little_octa(), n_threads=4)
        assert len(view.cores) == 8
        clusters = {c.cluster for c in view.cores}
        assert clusters == {"A15big", "A7little"}

    def test_has_measurement_semantics(self):
        view = view_for()
        for task in view.tasks:
            assert task.has_measurement == (
                task.busy_time_s > 0 and task.counters.instructions > 0
            )

    def test_core_power_ordering_plausible(self):
        """Loaded big cores read more power than the idle/sleeping
        leftovers."""
        view = view_for(n_threads=8)
        huge = view.core(0)
        small = view.core(3)
        assert huge.power_w > small.power_w

    def test_window_metadata(self):
        view = view_for()
        assert view.window_s == pytest.approx(0.12)
        assert view.epoch_index >= 0
