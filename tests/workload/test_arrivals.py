"""Seeded arrival processes: draw-order pins and shape properties.

The fleet dispatcher refactored onto :func:`poisson_process` from an
inline ``rng.expovariate`` loop; the pin test here freezes the draw
-order contract (exactly one ``expovariate(rate)`` call per arrival,
in arrival order) so the shared helper can never drift from the
stream the fleet digests were recorded against.
"""

import random

import pytest
from hypothesis import given, strategies as st

from repro.workload.arrivals import (
    diurnal_process,
    inhomogeneous_process,
    poisson_process,
    spike_process,
)


class TestPoissonDrawOrder:
    def test_byte_compatible_with_inline_loop(self):
        """poisson_process(rng, n, rate) consumes the RNG stream
        exactly as the historical inline loop did."""
        for seed in (0, 1, 7, 12345):
            rate = 40.0
            inline_rng = random.Random(seed)
            inline = []
            now = 0.0
            for _ in range(25):
                now += inline_rng.expovariate(rate)
                inline.append(now)
            helper_rng = random.Random(seed)
            assert poisson_process(helper_rng, 25, rate) == inline

    def test_rng_state_after_equals_inline(self):
        """Exactly n draws are consumed — the next draw after the
        helper matches the next draw after the inline loop."""
        a, b = random.Random(3), random.Random(3)
        poisson_process(a, 10, 55.0)
        for _ in range(10):
            b.expovariate(55.0)
        assert a.random() == b.random()

    @given(
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        n=st.integers(min_value=0, max_value=50),
        rate=st.floats(min_value=0.1, max_value=1e4),
    )
    def test_strictly_increasing_and_sized(self, seed, n, rate):
        times = poisson_process(random.Random(seed), n, rate)
        assert len(times) == n
        assert all(t > 0 for t in times)
        assert all(b > a for a, b in zip(times, times[1:]))


class TestInhomogeneous:
    def test_thinning_respects_rate_bound(self):
        with pytest.raises(ValueError, match="outside"):
            inhomogeneous_process(
                random.Random(0), 5, lambda t: 20.0, max_rate_hz=10.0
            )

    def test_diurnal_and_spike_increasing(self):
        for maker in (
            lambda rng: diurnal_process(rng, 30, 50.0, period_s=0.5),
            lambda rng: spike_process(rng, 30, 50.0, 0.1, 0.05),
        ):
            times = maker(random.Random(9))
            assert len(times) == 30
            assert all(b > a for a, b in zip(times, times[1:]))

    def test_spike_concentrates_mass(self):
        # A 10x burst over [0.2, 0.3) should put far more than its
        # share of duration-proportional arrivals inside the window.
        times = spike_process(
            random.Random(4), 400, 100.0, 0.2, 0.1, spike_factor=10.0
        )
        horizon = times[-1]
        in_spike = sum(1 for t in times if 0.2 <= t < 0.3)
        assert in_spike / 400 > 2 * (0.1 / horizon)

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            poisson_process(rng, -1, 10.0)
        with pytest.raises(ValueError):
            poisson_process(rng, 5, 0.0)
        with pytest.raises(ValueError):
            diurnal_process(rng, 5, 10.0, peak_factor=0.5)
        with pytest.raises(ValueError):
            spike_process(rng, 5, 10.0, 0.1, -0.1)
