"""Scenarios composed with the rest of the stack, end to end.

Three contracts:

* **Digest neutrality** — ``scenario="none"`` runs are byte-identical
  to pre-scenario builds.  The pinned digests below were recorded from
  the commit *before* the scenarios subsystem landed; any drift in the
  default path fails here first.
* **Faults x scenarios** — every scenario family survives the combined
  fault scenario with the defences on: threads arriving, blocking at
  barriers and exiting mid-epoch must not confuse the degradation or
  mitigation machinery.
* **Adaptation x scenarios** — online model maintenance keeps working
  when the task population churns (requests) or stalls (barriers).
"""

import pytest

from repro.runner.engine import execute_spec
from repro.runner.serialize import metrics_digest
from repro.runner.spec import RunSpec
from repro.scenarios import SCENARIO_FAMILIES

#: Small, fast scenario strings, one per family.
FAMILY_STRINGS = {
    "openloop": "openloop:rate=80,slo_ms=15,work_minstr=2",
    "barrier": "barrier:groups=1,members=3,intervals=3,interval_minstr=8",
    "smt": "smt:cores=half,corunners=2",
}

#: metrics_digest of these exact specs at the commit before
#: repro.scenarios existed.  The scenario field must stay inert at its
#: default — CACHE_FORMAT bumped, bytes did not.
PINNED_DEFAULT_DIGESTS = {
    "vanilla": (
        "b41f1137687428a25462741830f9ff8bdb5e82a93c528dcf2be48fc903147b7f"
    ),
    "smartbalance": (
        "ec54dba4ac4bd0a0a761d938f86efeb1b0207542d79c84decedac688e0e82e19"
    ),
}


def spec_for(family=None, **overrides):
    kwargs = dict(
        workload="MTMI",
        platform="quad",
        threads=4,
        balancer="smartbalance",
        n_epochs=4,
        seed=1,
    )
    if family is not None:
        kwargs["scenario"] = FAMILY_STRINGS[family]
    kwargs.update(overrides)
    return RunSpec(**kwargs)


class TestDefaultDigestUnchanged:
    def test_family_strings_cover_every_family(self):
        assert set(FAMILY_STRINGS) == set(SCENARIO_FAMILIES)

    @pytest.mark.parametrize("balancer", sorted(PINNED_DEFAULT_DIGESTS))
    def test_scenario_none_matches_pre_scenario_build(self, balancer):
        result = execute_spec(spec_for(balancer=balancer))
        assert metrics_digest(result) == PINNED_DEFAULT_DIGESTS[balancer]

    def test_scenario_none_result_has_no_scenario_key(self):
        from repro.runner.serialize import result_to_dict

        data = result_to_dict(execute_spec(spec_for(balancer="vanilla")))
        assert "scenario" not in data


class TestFaultsAcrossScenarios:
    @pytest.mark.parametrize("family", sorted(FAMILY_STRINGS))
    def test_combined_faults_complete_with_defences(self, family):
        result = execute_spec(spec_for(family, faults="combined"))
        assert result.instructions > 0
        assert result.energy_j > 0
        stats = result.resilience
        assert stats is not None
        assert stats.faults_injected > 0
        assert result.scenario is not None
        assert result.scenario["family"] == family

    @pytest.mark.parametrize("family", sorted(FAMILY_STRINGS))
    def test_ablated_defences_still_complete(self, family):
        # Quality may degrade; the simulator must not crash while
        # scenario threads churn under faults.
        result = execute_spec(
            spec_for(family, faults="combined", mitigations=False)
        )
        assert result.instructions > 0
        assert result.scenario["family"] == family


class TestAdaptationAcrossScenarios:
    @pytest.mark.parametrize("family", sorted(FAMILY_STRINGS))
    def test_adaptation_runs_under_each_family(self, family):
        result = execute_spec(spec_for(family, adaptation=True))
        assert result.instructions > 0
        assert result.scenario["family"] == family
        # The adaptation ledger is reported through resilience stats.
        assert result.resilience is not None

    def test_adaptation_with_faults_and_openloop(self):
        # The hardest composition: model maintenance + fault injection
        # + threads arriving and retiring mid-epoch.
        result = execute_spec(
            spec_for("openloop", faults="combined", adaptation=True)
        )
        assert result.instructions > 0
        assert result.resilience.faults_injected > 0


class TestVariantsEndToEnd:
    def test_tpeq_through_runner(self):
        result = execute_spec(
            spec_for("barrier", balancer="tpeq", platform="biglittle")
        )
        assert result.scenario["family"] == "barrier"
        assert result.instructions > 0

    def test_slo_through_runner(self):
        result = execute_spec(
            spec_for("openloop", balancer="slo", platform="biglittle")
        )
        assert result.scenario["family"] == "openloop"
        assert result.scenario["completed"] > 0

    def test_variants_reject_non_scenario_free_combo(self):
        # Variants run fine without a scenario too (degrade to stock).
        result = execute_spec(spec_for(balancer="tpeq"))
        assert result.instructions > 0
