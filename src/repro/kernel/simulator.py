"""Full-system discrete-time simulator.

Drives the simulated MPSoC the way the paper's extended Gem5 + Linux
platform does (Fig. 3): per-core CFS scheduling in fixed periods,
epoch-aligned sensing through the noisy sensor interface, pluggable
cross-core balancers, and migration with cache warm-up costs.

Timing structure (paper Fig. 1(c)/Fig. 2): an *epoch* covers ``L`` CFS
scheduling periods.  At each balancer interval boundary the simulator

1. builds a :class:`~repro.kernel.view.SystemView` from the counters
   and energy accumulated since the last view (the sensing window),
2. calls the balancer (timing it — that wall-clock time is the
   overhead Fig. 7 reports),
3. applies the returned migrations, then
4. resets the epoch-scoped accumulators and simulates the next window.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.faults import DELAY, DELIVER, FaultInjector, FaultPlan
from repro.hardware import power as power_model
from repro.hardware.platform import Platform
from repro.hardware.thermal import AMBIENT_C, ThermalState
from repro.hardware.sensors import (
    DEFAULT_COUNTER_NOISE,
    DEFAULT_POWER_NOISE,
    NoiseModel,
    SensingInterface,
)
from repro.kernel.balancers.base import LoadBalancer, Placement
from repro.kernel.cfs import CACHE_WARMUP_S, CfsRunQueue
from repro.kernel.metrics import (
    CoreStats,
    EpochRecord,
    ResilienceStats,
    RunResult,
    TaskStats,
)
from repro.kernel.task import Task, TaskState
from repro.kernel.view import CoreView, SystemView, TaskView
from repro.obs import NULL_OBS, ObsContext
from repro.obs import events as obs_events
from repro.obs.log import get_logger
from repro.workload.characteristics import WorkloadPhase
from repro.workload.thread import ThreadBehavior, steady_thread

_log = get_logger("kernel.simulator")

#: Scheduler-side cost per migration (seconds) charged to the migrated
#: task's next slice via warm-up; matches the paper's assumption that
#: migration cost is dominated by cache refill.
MIGRATION_KERNEL_COST_S = 50e-6


@dataclass(frozen=True)
class SimulationConfig:
    """Knobs of the simulated platform and timing structure."""

    #: CFS scheduling period (seconds).
    period_s: float = 0.006
    #: L — CFS periods per SmartBalance epoch (60 ms epoch by default,
    #: the paper's value).
    periods_per_epoch: int = 10
    #: Sensor fidelity.
    counter_noise: NoiseModel = DEFAULT_COUNTER_NOISE
    power_noise: NoiseModel = DEFAULT_POWER_NOISE
    #: Seed for all sensing noise.
    seed: int = 0
    #: Number of low-duty kernel-daemon background tasks to add
    #: (the OS workload the paper notes it optimises jointly).
    os_noise_tasks: int = 0
    #: Enable the per-core RC thermal model with leakage feedback.
    thermal_enabled: bool = False
    #: Fault-injection plan (None = fault-free run).  Sensor/counter
    #: faults corrupt observations through the sensing interface;
    #: hotplug, throttle and migration faults are executed here on the
    #: simulator timeline.
    faults: Optional[FaultPlan] = None
    #: Kernel engine: ``"soa"`` (vectorised structure-of-arrays core,
    #: the default) or ``"reference"`` (the original object-per-task
    #: path).  Both produce digest-identical results — the equivalence
    #: is enforced by ``tests/kernel/test_soa_equivalence.py``.
    kernel: str = "soa"

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise ValueError(f"period_s must be positive, got {self.period_s}")
        if self.periods_per_epoch < 1:
            raise ValueError(
                f"periods_per_epoch must be >= 1, got {self.periods_per_epoch}"
            )
        if self.os_noise_tasks < 0:
            raise ValueError("os_noise_tasks must be non-negative")
        if self.kernel not in ("soa", "reference"):
            raise ValueError(
                f"kernel must be 'soa' or 'reference', got {self.kernel!r}"
            )

    @property
    def epoch_s(self) -> float:
        return self.period_s * self.periods_per_epoch


def _os_noise_behavior(index: int) -> ThreadBehavior:
    """A kernel-daemon-like background thread: tiny, bursty, low duty."""
    phase = WorkloadPhase(
        ilp=1.2,
        mem_share=0.30,
        branch_share=0.15,
        working_set_kb=24.0,
        code_footprint_kb=32.0,
        branch_entropy=0.45,
        data_locality=0.8,
        active_fraction=0.05,
    )
    return steady_thread(f"kworker/{index}", phase)


class System:
    """One simulated machine: platform + tasks + balancer."""

    def __init__(
        self,
        platform: Platform,
        behaviors: Sequence[ThreadBehavior],
        balancer: LoadBalancer,
        config: SimulationConfig | None = None,
        obs: Optional[ObsContext] = None,
        scenario=None,
    ) -> None:
        if not behaviors:
            raise ValueError("need at least one thread behaviour")
        self.platform = platform
        self.balancer = balancer
        #: Optional scenario runtime (repro.scenarios); drives barrier
        #: state machines, request-latency accounting and SMT opt-in.
        self.scenario = scenario
        self.config = config or SimulationConfig()
        self.obs = obs if obs is not None else NULL_OBS
        if obs is not None:
            # Thread the context through the balancer too, so the
            # sense/predict/anneal events land in the same trace.  A
            # balancer configured with its own context keeps it when
            # the simulator was not given one.
            self.balancer.obs = self.obs
        self.faults: Optional[FaultInjector] = None
        if self.config.faults is not None and self.config.faults.active:
            self.faults = FaultInjector(self.config.faults)
            self.faults.obs = self.obs
            self.faults.clock = lambda: self.time_s
        self.sensing = SensingInterface(
            counter_noise=self.config.counter_noise,
            power_noise=self.config.power_noise,
            seed=self.config.seed,
            faults=self.faults,
        )
        self.runqueues = [CfsRunQueue(core) for core in platform]
        #: Nominal (unthrottled) core of each queue; ``queue.core`` is
        #: swapped for a reduced-frequency clone while throttled.
        self._base_cores = {q.core.core_id: q.core for q in self.runqueues}
        self._online = [True] * len(platform)
        plan = self.config.faults
        self._hotplug_pending = sorted(
            plan.hotplug if plan else (), key=lambda e: e.time_s
        )
        self._throttle_pending = sorted(
            plan.throttle if plan else (), key=lambda e: e.time_s
        )
        #: core_id -> throttle end time while a throttle is active.
        self._throttle_until: dict[int, float] = {}
        #: Delayed migrations: (due_period, tid, core_id).
        self._pending_migrations: list[tuple[int, int, int]] = []
        self._period_counter = 0
        self._offline_placements_blocked = 0
        if self.config.thermal_enabled:
            for queue in self.runqueues:
                queue.thermal = ThermalState(core=queue.core.core_type)
        self.tasks: list[Task] = []
        self.time_s = 0.0
        self.total_migrations = 0
        self._window_migrations = 0
        #: Migrations since the last metrics-epoch boundary (independent
        #: of the balancer's own sensing-window resets).
        self._epoch_migrations = 0
        self._epoch_records: list[EpochRecord] = []
        self._view_counter = 0
        self._core_instructions = [0.0] * len(platform)
        #: Per-core (instructions, energy, busy) totals at the current
        #: epoch's start; maintained only while ``obs.enabled`` so the
        #: trace can carry per-core epoch deltas (the Perfetto tracks).
        self._obs_epoch_snapshot: "list[tuple[float, float, float]] | None" = None

        all_behaviors = list(behaviors) + [
            _os_noise_behavior(i) for i in range(self.config.os_noise_tasks)
        ]
        for index, behavior in enumerate(all_behaviors):
            is_user = index < len(behaviors)
            task = Task(
                tid=index,
                behavior=behavior,
                core_id=0,
                is_user=is_user,
            )
            self.tasks.append(task)
        self._place_initial()
        #: Tasks not yet arrived, as a (arrival_s, tid) min-list so the
        #: per-period arrival scan is O(due) instead of O(n_tasks).
        self._pending_arrivals = sorted(
            (t.behavior.arrival_s, t.tid)
            for t in self.tasks
            if t.state is TaskState.PENDING
        )
        # The scenario attaches before the engine is built: attach-time
        # state (barrier stops on tasks, SMT flags on run queues) must
        # be visible to the SoA kernel's construction snapshot so both
        # kernels start from identical state.
        if self.scenario is not None:
            self.scenario.attach(self)
        self.engine = None
        if self.config.kernel == "soa":
            from repro.kernel.soa import SoaKernel

            self.engine = SoaKernel(self)

    # ------------------------------------------------------------------
    # Placement & migration
    # ------------------------------------------------------------------

    def _place_initial(self) -> None:
        """Round-robin initial placement (what fork balancing gives a
        freshly exec'd thread before any balancer runs), respecting
        each task's cpuset affinity."""
        for index, task in enumerate(self.tasks):
            candidates = [
                q for q in self.runqueues if task.may_run_on(q.core.core_id)
            ]
            if not candidates:
                raise ValueError(
                    f"task {task.name!r} has no allowed core on this platform"
                )
            queue = candidates[index % len(candidates)]
            queue.enqueue(task)
            if task.behavior.arrival_s <= 0:
                task.state = TaskState.ACTIVE

    def task_by_tid(self, tid: int) -> Task:
        return self.tasks[tid]

    def migrate(self, task: Task, core_id: int, cause: str = "balancer") -> None:
        """Move a task to another core (``set_cpus_allowed_ptr`` path).

        Charges the kernel-side cost and starts the cache warm-up
        window on the destination core.  ``cause`` records why the
        migration happened (``balancer``, ``hotplug``, ``fault_delay``)
        in the event trace.
        """
        if not 0 <= core_id < len(self.runqueues):
            raise ValueError(f"invalid destination core {core_id}")
        if not task.may_run_on(core_id):
            raise ValueError(
                f"task {task.name!r} is not allowed on core {core_id} "
                f"(cpuset {sorted(task.behavior.allowed_cores)})"
            )
        if core_id == task.core_id:
            return
        from_core = task.core_id
        if self.engine is not None:
            # enqueue() floors the incoming vruntime against the target
            # queue's minimum — refresh the object fields it reads.
            self.engine.sync_migration_inputs(task, self.runqueues[core_id])
        self.runqueues[from_core].dequeue(task)
        self.runqueues[core_id].enqueue(task)
        task.warmup_remaining_s = CACHE_WARMUP_S + MIGRATION_KERNEL_COST_S
        if self.engine is not None:
            self.engine.after_migration(task)
        task.migrations += 1
        self.total_migrations += 1
        self._window_migrations += 1
        self._epoch_migrations += 1
        if self.obs.enabled:
            self.obs.tracer.emit(
                obs_events.MIGRATION,
                self.time_s,
                tid=task.tid,
                from_core=from_core,
                to_core=core_id,
                cause=cause,
            )
            self.obs.metrics.inc(f"migrations.applied[{cause}]")

    def apply_placement(self, placement: Placement) -> int:
        """Apply a balancer's placement delta; returns migration count."""
        moved = 0
        for tid, core_id in placement.items():
            task = self.task_by_tid(tid)
            if task.state is TaskState.EXITED:
                continue
            if not task.may_run_on(core_id):
                # The kernel enforces cpusets regardless of what a
                # balancer asks for.
                continue
            if not 0 <= core_id < len(self._online) or not self._online[core_id]:
                # The kernel refuses to migrate onto an unplugged core
                # no matter what the balancer believes exists.
                self._offline_placements_blocked += 1
                if self.obs.enabled:
                    self.obs.tracer.emit(
                        obs_events.MITIGATION,
                        self.time_s,
                        kind="offline_placement_blocked",
                        cause="target_core_offline",
                        tid=tid,
                        core=core_id,
                    )
                    self.obs.metrics.inc("kernel.offline_placements_blocked")
                continue
            if task.core_id == core_id:
                continue
            fate, delay = (
                self.faults.migration_fate() if self.faults else (DELIVER, 0)
            )
            if fate == DELAY:
                self._pending_migrations.append(
                    (self._period_counter + delay, tid, core_id)
                )
                continue
            if fate != DELIVER:
                continue  # lost in the kernel, silently
            self.migrate(task, core_id)
            moved += 1
        return moved

    # ------------------------------------------------------------------
    # Fault-plan timeline events
    # ------------------------------------------------------------------

    def _set_core_online(self, core_id: int, online: bool) -> None:
        if not 0 <= core_id < len(self.runqueues):
            return
        if online == self._online[core_id]:
            return
        if not online and sum(self._online) <= 1:
            return  # never unplug the last core
        self._online[core_id] = online
        if self.engine is not None:
            self.engine.set_online(core_id, online)
            if not online:
                # The evacuation below picks targets by queue.load(),
                # which reads task utilisations off the objects.
                self.engine.sync_loads()
        if self.faults:
            self.faults.counts.hotplug_events += 1
            self.faults._emit(
                "hotplug", core=core_id, detail="online" if online else "offline"
            )
        if online:
            return
        # Offline path: the kernel migrates the dead queue's tasks to
        # the least-loaded online core their cpuset allows; a task
        # allowed nowhere else stays parked (and starves) — exactly
        # what Linux does with an impossible cpuset.
        queue = self.runqueues[core_id]
        for task in list(queue.tasks):
            candidates = [
                q
                for q in self.runqueues
                if self._online[q.core.core_id]
                and q.core.core_id != core_id
                and task.may_run_on(q.core.core_id)
            ]
            if not candidates:
                continue
            target = min(candidates, key=lambda q: q.load())
            self.migrate(task, target.core.core_id, cause="hotplug")

    def _set_throttle(self, core_id: int, freq_scale: Optional[float]) -> None:
        """Apply (or with ``None`` lift) a thermal throttle on a core.

        The clone keeps the core type's *name* so the predictor's
        per-type Θ lookup still resolves — firmware throttling is
        invisible to the OS, which is exactly what makes it a fault.
        """
        if not 0 <= core_id < len(self.runqueues):
            return
        base = self._base_cores[core_id]
        queue = self.runqueues[core_id]
        if freq_scale is None:
            queue.core = base
            if self.engine is not None:
                self.engine.on_core_type_changed(core_id, base.core_type)
            return
        throttled_type = replace(
            base.core_type, freq_mhz=base.core_type.freq_mhz * freq_scale
        )
        queue.core = replace(base, core_type=throttled_type)
        if self.engine is not None:
            self.engine.on_core_type_changed(core_id, throttled_type)
        if self.faults:
            self.faults.counts.throttle_events += 1
            self.faults._emit("throttle", core=core_id, detail=freq_scale)

    def set_core_base_type(self, core_id: int, core_type) -> None:
        """Re-base a core onto a governor-chosen operating point.

        Unlike a throttle fault, a DVFS change is *OS-visible*: the new
        type becomes the core's base, so ``build_view`` reports it and
        the firmware idle/sleep tables follow.  An active throttle
        fault keeps its relative frequency scale across the re-base —
        firmware caps track the commanded clock, not the nominal one.
        """
        old_base = self._base_cores[core_id]
        if old_base.core_type == core_type:
            return
        new_base = replace(old_base, core_type=core_type)
        self._base_cores[core_id] = new_base
        queue = self.runqueues[core_id]
        if core_id in self._throttle_until:
            scale = queue.core.core_type.freq_mhz / old_base.core_type.freq_mhz
            queue.core = replace(
                new_base,
                core_type=replace(
                    core_type, freq_mhz=core_type.freq_mhz * scale
                ),
            )
        else:
            queue.core = new_base
        if self.engine is not None:
            self.engine.on_core_type_changed(core_id, queue.core.core_type)

    def _apply_opp_changes(self, changes) -> None:
        """Apply cluster OPP switches adopted by a governor balancer.

        Each entry is duck-typed (``repro.kernel`` never imports the
        governor package): ``core_ids``/``new_types`` drive the
        re-base, the remaining fields feed the ``opp_change`` event.
        """
        for change in changes:
            for core_id, new_type in zip(change.core_ids, change.new_types):
                self.set_core_base_type(core_id, new_type)
            if self.obs.enabled:
                self.obs.tracer.emit(
                    obs_events.OPP_CHANGE,
                    self.time_s,
                    cluster=change.cluster,
                    epoch=self._view_counter,
                    from_level=change.from_level,
                    to_level=change.to_level,
                    from_freq_mhz=change.from_freq_mhz,
                    to_freq_mhz=change.to_freq_mhz,
                    from_vdd=change.from_vdd,
                    to_vdd=change.to_vdd,
                    cores=list(change.core_ids),
                    transition_latency_s=change.transition_latency_s,
                    transition_energy_j=change.transition_energy_j,
                )
                self.obs.metrics.inc("kernel.opp_changes")

    def _process_fault_events(self) -> None:
        """Fire every timeline event due at the current simulated time."""
        while self._hotplug_pending and self._hotplug_pending[0].time_s <= self.time_s:
            event = self._hotplug_pending.pop(0)
            self._set_core_online(event.core_id, event.online)
        while (
            self._throttle_pending
            and self._throttle_pending[0].time_s <= self.time_s
        ):
            event = self._throttle_pending.pop(0)
            self._set_throttle(event.core_id, event.freq_scale)
            self._throttle_until[event.core_id] = max(
                self._throttle_until.get(event.core_id, 0.0),
                event.time_s + event.duration_s,
            )
        for core_id in list(self._throttle_until):
            if self.time_s >= self._throttle_until[core_id]:
                self._set_throttle(core_id, None)
                del self._throttle_until[core_id]
        due = [m for m in self._pending_migrations if m[0] <= self._period_counter]
        if due:
            self._pending_migrations = [
                m for m in self._pending_migrations if m[0] > self._period_counter
            ]
            for _, tid, core_id in due:
                task = self.task_by_tid(tid)
                if (
                    task.state is TaskState.EXITED
                    or not task.may_run_on(core_id)
                    or not self._online[core_id]
                    or task.core_id == core_id
                ):
                    continue
                self.migrate(task, core_id, cause="fault_delay")

    # ------------------------------------------------------------------
    # Sensing
    # ------------------------------------------------------------------

    def build_view(self, window_s: float) -> SystemView:
        """Construct the observable system view for the last window."""
        if self.engine is not None:
            # The sensing path reads counters, utilisation and energy
            # off the Task/CfsRunQueue objects — refresh them from the
            # array state first.  (The noise RNG draw order below is
            # unchanged: tasks in tid order, then cores in id order.)
            self.engine.sync_to_objects()
        # Scenario observables (progress fractions, SLO slack) ride on
        # the TaskViews so scenario-aware balancers can weight threads.
        extras_by_tid: "dict[int, dict]" = (
            self.scenario.task_extras(self) if self.scenario is not None else {}
        )
        task_views = []
        for task in self.tasks:
            if task.state is TaskState.PENDING:
                continue
            noisy = self.sensing.read_counters(task.counters, owner=("task", task.tid))
            busy = task.counters.busy_time_s
            if busy > 0:
                true_power = task.epoch_energy_j / busy
                measured_power = self.sensing.read_power(
                    true_power, owner=("task", task.tid)
                )
            else:
                measured_power = 0.0
            task_views.append(
                TaskView(
                    tid=task.tid,
                    name=task.name,
                    core_id=task.core_id,
                    weight=task.weight,
                    is_user=task.is_user,
                    utilization=task.utilization,
                    counters=noisy,
                    rates=noisy.derive_rates(),
                    power_w=measured_power,
                    busy_time_s=busy,
                    allowed_cores=task.behavior.allowed_cores,
                    **extras_by_tid.get(task.tid, {}),
                )
            )
        core_views = []
        for queue in self.runqueues:
            # The view reports the *nominal* core type: firmware-level
            # thermal throttling is invisible to the OS, so a throttled
            # core shows up only as prediction error downstream.
            core_type = self._base_cores[queue.core.core_id].core_type
            elapsed = queue.epoch_time_s
            avg_power = queue.epoch_energy_j / elapsed if elapsed > 0 else 0.0
            # Effective cost of unused capacity: shallow idle up to the
            # cpuidle latency, power-gated sleep beyond — what the
            # kernel's own cpuidle accounting would report.
            from repro.kernel.cfs import IDLE_TO_SLEEP_LATENCY_S

            shallow_frac = min(IDLE_TO_SLEEP_LATENCY_S / self.config.period_s, 1.0)
            effective_idle = (
                shallow_frac * power_model.idle_power(core_type).total_w
                + (1.0 - shallow_frac) * power_model.sleep_power(core_type)
            )
            core_views.append(
                CoreView(
                    core_id=queue.core.core_id,
                    core_type=core_type,
                    cluster=queue.core.cluster,
                    power_w=self.sensing.read_power(
                        avg_power, owner=("core", queue.core.core_id)
                    ),
                    idle_power_w=effective_idle,
                    sleep_power_w=power_model.sleep_power(core_type),
                    counters=self.sensing.read_counters(
                        queue.counters, owner=("core", queue.core.core_id)
                    ),
                    nr_running=queue.nr_running(),
                    load=queue.load(),
                    temperature_c=(
                        queue.thermal.temp_c if queue.thermal else AMBIENT_C
                    ),
                    online=self._online[queue.core.core_id],
                )
            )
        return SystemView(
            epoch_index=self._view_counter,
            time_s=self.time_s,
            window_s=window_s,
            platform=self.platform,
            tasks=tuple(task_views),
            cores=tuple(core_views),
        )

    def _reset_window_accounting(self) -> None:
        for task in self.tasks:
            task.reset_epoch_accounting()
        for queue in self.runqueues:
            queue.reset_epoch_accounting()
        if self.engine is not None:
            self.engine.reset_window_accounting()
        self._window_migrations = 0

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(
        self,
        duration_s: Optional[float] = None,
        n_epochs: Optional[int] = None,
    ) -> RunResult:
        """Simulate for a duration or a number of epochs."""
        if (duration_s is None) == (n_epochs is None):
            raise ValueError("specify exactly one of duration_s or n_epochs")
        if n_epochs is None:
            n_epochs = max(int(round(duration_s / self.config.epoch_s)), 1)
        interval = max(self.balancer.interval_periods, 1)
        periods_total = n_epochs * self.config.periods_per_epoch

        obs = self.obs
        if obs.enabled:
            plan = self.config.faults
            obs.tracer.emit(
                obs_events.RUN_START,
                self.time_s,
                balancer=self.balancer.name,
                platform=self.platform.name,
                n_tasks=len(self.tasks),
                n_cores=len(self.runqueues),
                core_types=[
                    self._base_cores[q.core.core_id].core_type.name
                    for q in self.runqueues
                ],
                seed=self.config.seed,
                faults=bool(plan is not None and plan.active),
            )

        window_instructions = 0.0
        window_energy = 0.0
        window_start = self.time_s
        window_balancer_time = 0.0
        periods_since_rebalance = 0

        for period_index in range(periods_total):
            if obs.enabled and period_index % self.config.periods_per_epoch == 0:
                obs.tracer.emit(
                    obs_events.EPOCH_START,
                    self.time_s,
                    epoch=len(self._epoch_records),
                )
                self._obs_epoch_snapshot = self._core_snapshot()
            # Rebalance at interval boundaries, including t=0 (the
            # first call sees an empty window, as a real kernel would).
            if period_index % interval == 0:
                view = self.build_view(
                    window_s=periods_since_rebalance * self.config.period_s
                )
                t0 = time.perf_counter()
                placement = self.balancer.rebalance(view)
                window_balancer_time += time.perf_counter() - t0
                # Reset the sensing window before applying the new
                # placement so these migrations are charged to the
                # window they affect.
                self._reset_window_accounting()
                if placement:
                    self.apply_placement(placement)
                # A governor balancer may have adopted cluster OPP
                # switches alongside the placement; collect and apply
                # them so the next window runs at the new points.
                taker = getattr(self.balancer, "take_opp_request", None)
                if taker is not None:
                    opp_changes = taker()
                    if opp_changes:
                        self._apply_opp_changes(opp_changes)
                self._view_counter += 1
                periods_since_rebalance = 0

            self._process_fault_events()
            self._handle_arrivals()
            period_instr, period_energy = self._simulate_period()
            self._period_counter += 1
            if self.scenario is not None:
                self.scenario.on_period(self)
            window_instructions += period_instr
            window_energy += period_energy
            periods_since_rebalance += 1

            # Epoch bookkeeping for metrics (independent of the
            # balancer's own interval so results are comparable).
            if (period_index + 1) % self.config.periods_per_epoch == 0:
                record = EpochRecord(
                    epoch_index=len(self._epoch_records),
                    start_time_s=window_start,
                    duration_s=self.time_s - window_start,
                    instructions=window_instructions,
                    energy_j=window_energy,
                    migrations=self._epoch_migrations,
                    balancer_time_s=window_balancer_time,
                )
                self._epoch_records.append(record)
                if record.degenerate:
                    # ips_per_watt reads 0.0 for this epoch — flag it
                    # loudly instead of letting the zero get averaged
                    # into efficiency figures as if it were real.
                    _log.warning(
                        "epoch %d is degenerate (energy_j=%g <= 0); "
                        "its ips_per_watt of 0.0 is not a real efficiency",
                        record.epoch_index,
                        record.energy_j,
                    )
                if obs.enabled:
                    self._emit_epoch_end(record)
                window_instructions = 0.0
                window_energy = 0.0
                window_balancer_time = 0.0
                window_start = self.time_s
                self._epoch_migrations = 0

        result = self._result()
        if obs.enabled:
            obs.tracer.emit(
                obs_events.RUN_END,
                self.time_s,
                duration_s=result.duration_s,
                instructions=result.instructions,
                energy_j=result.energy_j,
                migrations=result.migrations,
                ips_per_watt=result.ips_per_watt,
            )
            if result.phase_times:
                obs.tracer.emit(
                    obs_events.PHASE_PROFILE,
                    self.time_s,
                    phases=dict(result.phase_times),
                )
            obs.metrics.set_gauge("run.ips_per_watt", result.ips_per_watt)
            obs.metrics.set_gauge("run.energy_j", result.energy_j)
            obs.metrics.set_gauge("run.instructions", result.instructions)
        return result

    def _core_snapshot(self) -> "list[tuple[float, float, float]]":
        """Per-core cumulative (instructions, energy_j, busy_s)."""
        if self.engine is not None:
            self.engine.sync_to_objects()
        return [
            (
                self._core_instructions[q.core.core_id],
                q.total_energy_j,
                q.total_busy_s,
            )
            for q in self.runqueues
        ]

    def _emit_epoch_end(self, record: EpochRecord) -> None:
        """Emit the epoch's trace events (per-core deltas included)."""
        obs = self.obs
        per_core = []
        if self._obs_epoch_snapshot is not None:
            current = self._core_snapshot()
            for core_id, (now, then) in enumerate(
                zip(current, self._obs_epoch_snapshot)
            ):
                per_core.append(
                    {
                        "core": core_id,
                        "instructions": now[0] - then[0],
                        "energy_j": now[1] - then[1],
                        "busy_s": now[2] - then[2],
                    }
                )
        obs.tracer.emit(
            obs_events.EPOCH_END,
            self.time_s,
            epoch=record.epoch_index,
            duration_s=record.duration_s,
            instructions=record.instructions,
            energy_j=record.energy_j,
            migrations=record.migrations,
            ips_per_watt=record.ips_per_watt,
            degenerate=record.degenerate,
            per_core=per_core,
        )
        obs.metrics.inc("epochs.total")
        if record.degenerate:
            obs.metrics.inc("balancer.epochs_degenerate")
            obs.tracer.emit(
                obs_events.DEGENERATE_EPOCH,
                self.time_s,
                epoch=record.epoch_index,
                duration_s=record.duration_s,
                instructions=record.instructions,
                energy_j=record.energy_j,
            )

    def _handle_arrivals(self) -> None:
        pending = self._pending_arrivals
        while pending and pending[0][0] <= self.time_s:
            _, tid = pending.pop(0)
            task = self.tasks[tid]
            if task.state is TaskState.PENDING:
                task.state = TaskState.ACTIVE
                if self.engine is not None:
                    self.engine.on_arrival(tid)

    def _simulate_period(self) -> tuple[float, float]:
        """Advance all cores by one CFS period; returns (instr, energy)."""
        if self.engine is not None:
            instructions, energy = self.engine.simulate_period(
                self.config.period_s
            )
            self.time_s += self.config.period_s
            return instructions, energy
        instructions = 0.0
        energy = 0.0
        for queue in self.runqueues:
            if not self._online[queue.core.core_id]:
                # An unplugged core executes nothing and draws nothing.
                continue
            result = queue.schedule_period(self.config.period_s)
            # Accumulate this queue's period total slot-by-slot, then
            # fold it into the lifetime counter with ONE add — the SoA
            # kernel reproduces exactly that float sequence (cumsum row
            # + one array add), so keep the shape if you touch this.
            period_core_instr = 0.0
            for sl in result.slices:
                if sl.task.is_user:
                    instructions += sl.instructions
                period_core_instr += sl.instructions
            self._core_instructions[queue.core.core_id] += period_core_instr
            energy += result.energy_j
        for task in self.tasks:
            if task.state is TaskState.ACTIVE and self._online[task.core_id]:
                # The queue's current core reflects any active throttle.
                core_type = self.runqueues[task.core_id].core.core_type
                task.update_utilization(task.demanded_fraction(core_type))
        self.time_s += self.config.period_s
        return instructions, energy

    def _result(self) -> RunResult:
        if self.engine is not None:
            self.engine.sync_to_objects()
        core_stats = tuple(
            CoreStats(
                core_id=q.core.core_id,
                core_type_name=q.core.core_type.name,
                instructions=self._core_instructions[q.core.core_id],
                energy_j=q.total_energy_j,
                busy_s=q.total_busy_s,
                idle_s=q.total_idle_s,
                sleep_s=q.total_sleep_s,
                peak_temp_c=q.thermal.peak_c if q.thermal else None,
            )
            for q in self.runqueues
        )
        task_stats = tuple(
            TaskStats(
                tid=t.tid,
                name=t.name,
                instructions=t.total_instructions,
                busy_s=t.total_busy_time_s,
                energy_j=t.total_energy_j,
                migrations=t.migrations,
            )
            for t in self.tasks
        )
        user_instructions = sum(t.instructions for t in task_stats if self.tasks[t.tid].is_user)
        total_energy = sum(c.energy_j for c in core_stats)
        # Per-phase wall-clock breakdown when the balancer keeps one
        # (the SmartBalance adapter does; kernel baselines do not).
        phase_records = getattr(self.balancer, "timings", None)
        phase_times: tuple[tuple[str, float], ...] = ()
        if phase_records:
            phase_times = (
                ("sense", sum(t.sense_s for t in phase_records)),
                ("predict", sum(t.predict_s for t in phase_records)),
                ("balance", sum(t.balance_s for t in phase_records)),
            )
        return RunResult(
            resilience=self._resilience_stats(),
            phase_times=phase_times,
            governor=getattr(self.balancer, "governor_stats", None),
            scenario=self.scenario.stats() if self.scenario is not None else None,
            balancer_name=self.balancer.name,
            platform_name=self.platform.name,
            duration_s=self.time_s,
            instructions=user_instructions,
            energy_j=total_energy,
            migrations=self.total_migrations,
            epochs=tuple(self._epoch_records),
            core_stats=core_stats,
            task_stats=task_stats,
        )

    def _resilience_stats(self) -> "ResilienceStats | None":
        """Merge injector tallies with the balancer's health telemetry."""
        health = getattr(self.balancer, "health", None)
        if self.faults is None and health is None:
            return None
        counts = self.faults.counts if self.faults else None
        kwargs: dict = {
            "offline_placements_blocked": self._offline_placements_blocked
        }
        if counts is not None:
            kwargs.update(
                sensor_dropouts=counts.sensor_dropouts,
                sensor_stuck=counts.sensor_stuck,
                sensor_spikes=counts.sensor_spikes,
                counter_wraps=counts.counter_wraps,
                counter_saturations=counts.counter_saturations,
                migrations_lost=counts.migrations_lost,
                migrations_delayed=counts.migrations_delayed,
                hotplug_events=counts.hotplug_events,
                throttle_events=counts.throttle_events,
            )
        if health is not None:
            kwargs.update(
                samples_rejected=health.samples_rejected,
                rejects_by_reason=dict(health.rejects_by_reason),
                fallback_rows_used=health.fallback_rows_used,
                threads_dropped=health.threads_dropped,
                samples_rebaselined=health.samples_rebaselined,
                watchdog_trips=health.watchdog_trips,
                watchdog_fallback_epochs=health.watchdog_fallback_epochs,
                truncated_epochs=health.truncated_epochs,
                budget_skipped_epochs=health.budget_skipped_epochs,
                hotplug_masked_epochs=health.hotplug_masked_epochs,
                drift_detections=getattr(health, "drift_detections", 0),
                model_updates=getattr(health, "model_updates", 0),
                model_rollbacks=getattr(health, "model_rollbacks", 0),
                watchdog_repairs=getattr(health, "watchdog_repairs", 0),
            )
        return ResilienceStats(**kwargs)
