"""Fault events vs resilience accounting: the two ledgers must agree.

The fault layer (``repro.faults``) counts what it inflicts in
``ResilienceStats``; with tracing on it *also* emits one
``fault_injected`` event per injection (counter corruptions batch
multiple channels into one event with a ``count`` field).  The defence
side emits ``mitigation`` events.  This suite cross-checks the event
stream against the stats object of the same run, and asserts that
every mitigation names its cause.
"""

from collections import Counter

import pytest

from repro.obs.events import FAULT_KINDS, MIGRATION_CAUSES, MITIGATION_KINDS


@pytest.fixture(scope="module")
def faults_by_kind(traced_events):
    """kind -> delivered-injection count (summing batched events)."""
    totals: Counter = Counter()
    for event in traced_events:
        if event["type"] != "fault_injected":
            continue
        totals[event["kind"]] += event.get("count", 1)
    return totals


@pytest.fixture(scope="module")
def mitigations_by_kind(traced_events):
    return Counter(
        e["kind"] for e in traced_events if e["type"] == "mitigation"
    )


class TestFaultEvents:
    def test_kinds_are_registered(self, traced_events):
        for event in traced_events:
            if event["type"] == "fault_injected":
                assert event["kind"] in FAULT_KINDS

    def test_sensor_counts_match_stats(self, traced, faults_by_kind):
        stats = traced[1].resilience
        assert faults_by_kind["sensor_dropout"] == stats.sensor_dropouts
        assert faults_by_kind["sensor_stuck"] == stats.sensor_stuck
        assert faults_by_kind["sensor_spike"] == stats.sensor_spikes

    def test_counter_counts_match_stats(self, traced, faults_by_kind):
        stats = traced[1].resilience
        assert faults_by_kind["counter_wrap"] == stats.counter_wraps
        assert faults_by_kind["counter_saturation"] == stats.counter_saturations

    def test_migration_fates_match_stats(self, traced, faults_by_kind):
        stats = traced[1].resilience
        assert faults_by_kind["migration_lost"] == stats.migrations_lost
        assert faults_by_kind["migration_delayed"] == stats.migrations_delayed

    def test_hotplug_and_throttle_match_stats(self, traced, faults_by_kind):
        stats = traced[1].resilience
        assert faults_by_kind["hotplug"] == stats.hotplug_events
        assert faults_by_kind["throttle"] == stats.throttle_events

    def test_event_total_matches_faults_injected(self, traced, faults_by_kind):
        assert sum(faults_by_kind.values()) == traced[1].resilience.faults_injected


class TestMitigationEvents:
    def test_every_mitigation_names_kind_and_cause(self, traced_events):
        mitigations = [e for e in traced_events if e["type"] == "mitigation"]
        assert mitigations, "combined scenario must trigger defences"
        for event in mitigations:
            assert event["kind"] in MITIGATION_KINDS
            cause = event.get("cause")
            assert isinstance(cause, str) and cause

    def test_defence_counts_match_stats(self, traced, mitigations_by_kind):
        stats = traced[1].resilience
        assert mitigations_by_kind["sample_rejected"] == stats.samples_rejected
        assert mitigations_by_kind["fallback_row"] == stats.fallback_rows_used
        assert mitigations_by_kind["rebaseline"] == stats.samples_rebaselined
        assert mitigations_by_kind["thread_dropped"] == stats.threads_dropped
        assert (
            mitigations_by_kind["watchdog_fallback"]
            == stats.watchdog_fallback_epochs
        )
        assert mitigations_by_kind["sa_truncated"] == stats.truncated_epochs
        assert mitigations_by_kind["budget_skip"] == stats.budget_skipped_epochs
        assert (
            mitigations_by_kind["hotplug_mask"] == stats.hotplug_masked_epochs
        )
        assert (
            mitigations_by_kind["offline_placement_blocked"]
            == stats.offline_placements_blocked
        )

    def test_rejections_pair_with_stat_reasons(self, traced, traced_events):
        stats = traced[1].resilience
        reasons = Counter(
            e["cause"]
            for e in traced_events
            if e["type"] == "mitigation" and e["kind"] == "sample_rejected"
        )
        assert dict(reasons) == stats.rejects_by_reason


class TestMigrationCausality:
    def test_causes_are_registered(self, traced_events):
        migrations = [e for e in traced_events if e["type"] == "migration"]
        assert migrations
        for event in migrations:
            assert event["cause"] in MIGRATION_CAUSES

    def test_event_count_matches_result(self, traced, traced_events):
        migrations = [e for e in traced_events if e["type"] == "migration"]
        assert len(migrations) == traced[1].migrations

    def test_fault_migrations_have_matching_injections(
        self, traced_events, faults_by_kind
    ):
        """Every fault-delayed migration pairs with a migration_delayed
        injection, every hotplug evacuation with a hotplug event."""
        causes = Counter(
            e["cause"] for e in traced_events if e["type"] == "migration"
        )
        assert causes.get("fault_delay", 0) <= faults_by_kind["migration_delayed"]
        if causes.get("hotplug"):
            assert faults_by_kind["hotplug"] > 0
