"""Golden-trace regression tests.

Each fixture under ``tests/fixtures/golden/`` pins the per-epoch
energy-efficiency (J_E = instructions/Joule), IPS and power trace of
one QUICK-scale run per balancer.  Any change to the sense→predict→
balance pipeline that shifts a single epoch of a single run beyond
1e-9 relative error fails here — deliberate behaviour changes must
regenerate the fixtures and justify the diff in review:

    PYTHONPATH=src python -m pytest tests/runner/test_golden.py --update-golden
"""

import json
import math
from pathlib import Path

import pytest

from repro.experiments.common import QUICK
from repro.runner import RunSpec, run_specs

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "fixtures" / "golden"

#: One golden workload, three balancers (the paper's subject plus both
#: reference policies).
BALANCERS = ("vanilla", "gts", "smartbalance")
WORKLOAD, THREADS = "MTMI", 4

#: Relative tolerance: loose enough to absorb BLAS summation-order
#: differences across hosts (~1e-16), tight enough that any real
#: behaviour change trips it.
RTOL = 1e-9


def golden_path(balancer: str) -> Path:
    return GOLDEN_DIR / f"biglittle_{WORKLOAD}_x{THREADS}_{balancer}.json"


def spec_for(balancer: str) -> RunSpec:
    return RunSpec(
        workload=WORKLOAD,
        platform="biglittle",
        threads=THREADS,
        balancer=balancer,
        n_epochs=QUICK.n_epochs,
    )


def trace_of(result) -> dict:
    return {
        "balancer": result.balancer_name,
        "platform": result.platform_name,
        "totals": {
            "instructions": result.instructions,
            "energy_j": result.energy_j,
            "ips_per_watt": result.ips_per_watt,
            "migrations": result.migrations,
        },
        "epochs": [
            {
                "ips": e.instructions / e.duration_s,
                "power_w": e.energy_j / e.duration_s,
                "ips_per_watt": e.ips_per_watt,
            }
            for e in result.epochs
        ],
    }


@pytest.fixture(scope="module")
def traces():
    specs = [spec_for(b) for b in BALANCERS]
    results = run_specs(specs, jobs=1)
    return {b: trace_of(r) for b, r in zip(BALANCERS, results)}


@pytest.fixture(scope="module", autouse=True)
def maybe_update(request, traces):
    if request.config.getoption("--update-golden"):
        GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
        for balancer, trace in traces.items():
            golden_path(balancer).write_text(
                json.dumps(trace, indent=2, sort_keys=True) + "\n"
            )


def assert_close(actual, expected, path):
    if isinstance(expected, dict):
        assert set(actual) == set(expected), f"{path}: key mismatch"
        for key in expected:
            assert_close(actual[key], expected[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert len(actual) == len(expected), f"{path}: length mismatch"
        for i, (a, e) in enumerate(zip(actual, expected)):
            assert_close(a, e, f"{path}[{i}]")
    elif isinstance(expected, float):
        assert math.isclose(actual, expected, rel_tol=RTOL, abs_tol=1e-12), (
            f"{path}: {actual!r} != {expected!r} (rel err "
            f"{abs(actual - expected) / max(abs(expected), 1e-300):.3e})"
        )
    else:
        assert actual == expected, f"{path}: {actual!r} != {expected!r}"


@pytest.mark.parametrize("balancer", BALANCERS)
def test_trace_matches_golden(traces, balancer):
    path = golden_path(balancer)
    assert path.exists(), (
        f"missing golden fixture {path}; generate it with "
        "`python -m pytest tests/runner/test_golden.py --update-golden`"
    )
    expected = json.loads(path.read_text())
    assert_close(traces[balancer], expected, balancer)


@pytest.mark.parametrize("balancer", BALANCERS)
def test_golden_traces_are_nontrivial(traces, balancer):
    trace = traces[balancer]
    assert len(trace["epochs"]) == QUICK.n_epochs
    assert trace["totals"]["ips_per_watt"] > 0
    assert all(e["power_w"] > 0 for e in trace["epochs"])
