"""Tests for run-trace export."""

import csv
import io
import json

import pytest

from repro.analysis.trace import (
    CORE_COLUMNS,
    EPOCH_COLUMNS,
    core_rows,
    epoch_rows,
    to_csv,
    to_json,
    write_trace,
)
from repro.hardware.platform import quad_hmp
from repro.kernel.balancers.base import NullBalancer
from repro.kernel.simulator import System
from repro.workload.synthetic import imb_threads


@pytest.fixture(scope="module")
def result():
    system = System(quad_hmp(), imb_threads("MTMI", 4), NullBalancer())
    return system.run(n_epochs=5)


class TestRows:
    def test_epoch_rows_cover_run(self, result):
        rows = epoch_rows(result)
        assert len(rows) == 5
        assert set(rows[0]) == set(EPOCH_COLUMNS)
        assert sum(r["instructions"] for r in rows) == pytest.approx(
            result.instructions
        )

    def test_healthy_epochs_are_not_degenerate(self, result):
        assert all(r["degenerate"] is False for r in epoch_rows(result))

    def test_core_rows_cover_platform(self, result):
        rows = core_rows(result)
        assert len(rows) == 4
        assert set(rows[0]) == set(CORE_COLUMNS)
        assert {r["core_type"] for r in rows} == {"Huge", "Big", "Medium", "Small"}


class TestCsv:
    def test_epochs_csv_parses(self, result):
        text = to_csv(result, "epochs")
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 5
        assert float(parsed[0]["energy_j"]) > 0

    def test_cores_csv_parses(self, result):
        text = to_csv(result, "cores")
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 4

    def test_bad_selector_rejected(self, result):
        with pytest.raises(ValueError):
            to_csv(result, "tasks")


class TestJson:
    def test_document_structure(self, result):
        doc = json.loads(to_json(result))
        assert doc["balancer"] == "none"
        assert doc["platform"] == "quad-hmp"
        assert len(doc["epochs"]) == 5
        assert len(doc["cores"]) == 4
        assert len(doc["tasks"]) == 4
        assert doc["ips_per_watt"] == pytest.approx(result.ips_per_watt)


class TestWriteTrace:
    def test_json_suffix(self, result, tmp_path):
        path = tmp_path / "trace.json"
        write_trace(result, str(path))
        assert json.loads(path.read_text())["instructions"] > 0

    def test_csv_suffix(self, result, tmp_path):
        path = tmp_path / "trace.csv"
        write_trace(result, str(path))
        assert "ips_per_watt" in path.read_text()

    def test_unknown_suffix_needs_fmt(self, result, tmp_path):
        with pytest.raises(ValueError, match="cannot infer"):
            write_trace(result, str(tmp_path / "trace.dat"))
        write_trace(result, str(tmp_path / "trace.dat"), fmt="csv")

    def test_invalid_fmt_rejected(self, result, tmp_path):
        with pytest.raises(ValueError, match="fmt must be"):
            write_trace(result, str(tmp_path / "x.csv"), fmt="xml")
