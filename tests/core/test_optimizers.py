"""Tests for the alternative allocation optimizers."""

import numpy as np
import pytest

from repro.core.allocation import Allocation
from repro.core.objective import EnergyEfficiencyObjective
from repro.core.optimizers import (
    OPTIMIZERS,
    exhaustive_search,
    greedy_allocate,
    optimize,
    random_search,
)


def make_objective(m=5, n=3, seed=0):
    rng = np.random.default_rng(seed)
    ips = rng.uniform(1e8, 5e9, size=(m, n))
    power = rng.uniform(0.05, 8.0, size=(m, n))
    util = rng.uniform(0.1, 1.0, size=(m, n))
    idle = rng.uniform(0.05, 1.5, size=n)
    return EnergyEfficiencyObjective(
        ips=ips, power=power, utilization=util, idle_power=idle,
        sleep_power=0.1 * idle,
    )


class TestGreedy:
    def test_never_worse_than_initial(self):
        objective = make_objective()
        result = greedy_allocate(objective, Allocation.round_robin(5, 3))
        assert result.best_value >= result.initial_value
        assert result.method == "greedy"

    def test_initial_untouched(self):
        objective = make_objective()
        initial = Allocation.round_robin(5, 3)
        before = initial.mapping()
        greedy_allocate(objective, initial)
        assert initial.mapping() == before

    def test_result_complete(self):
        objective = make_objective(seed=4)
        result = greedy_allocate(objective, Allocation.round_robin(5, 3))
        assert result.best_allocation.is_complete()

    def test_reaches_local_optimum(self):
        """Running greedy again from its own output must not improve."""
        objective = make_objective(seed=9)
        first = greedy_allocate(objective, Allocation.round_robin(5, 3))
        second = greedy_allocate(objective, first.best_allocation)
        assert second.best_value == pytest.approx(first.best_value, rel=1e-12)

    def test_invalid_rounds_rejected(self):
        with pytest.raises(ValueError):
            greedy_allocate(make_objective(), Allocation.round_robin(5, 3),
                            max_rounds=0)


class TestRandomSearch:
    def test_never_worse(self):
        objective = make_objective(seed=2)
        result = random_search(objective, Allocation.round_robin(5, 3),
                               iterations=500)
        assert result.best_value >= result.initial_value
        assert result.evaluations == 500

    def test_deterministic_per_seed(self):
        objective = make_objective(seed=3)
        initial = Allocation.round_robin(5, 3)
        a = random_search(objective, initial, iterations=200, seed=42)
        b = random_search(objective, initial, iterations=200, seed=42)
        assert a.best_value == b.best_value

    def test_invalid_iterations_rejected(self):
        with pytest.raises(ValueError):
            random_search(make_objective(), Allocation.round_robin(5, 3),
                          iterations=0)


class TestExhaustive:
    def test_finds_true_optimum(self):
        """Exhaustive must dominate every other optimizer."""
        objective = make_objective(m=5, n=3, seed=7)
        initial = Allocation.round_robin(5, 3)
        optimum = exhaustive_search(objective, initial)
        assert optimum.evaluations == 3 ** 5
        for method in ("greedy", "random", "annealing"):
            other = optimize(method, objective, initial)
            # Compare fresh evaluations: incrementally-tracked values
            # carry last-ulp drift.
            fresh = objective.evaluate(other.best_allocation)
            assert fresh <= optimum.best_value * (1 + 1e-9)

    def test_guard_against_explosion(self):
        objective = make_objective(m=5, n=3)
        big = make_objective(m=20, n=4)
        exhaustive_search(objective)  # fine
        with pytest.raises(ValueError, match="exceed"):
            exhaustive_search(big)


class TestOptimizeDispatch:
    def test_all_registered_methods_run(self):
        objective = make_objective(m=4, n=2, seed=1)
        initial = Allocation.round_robin(4, 2)
        for method in OPTIMIZERS:
            result = optimize(method, objective, initial)
            assert result.method == method
            assert result.best_allocation.is_complete()

    def test_unknown_method_rejected(self):
        with pytest.raises(KeyError, match="unknown optimizer"):
            optimize("quantum", make_objective(), Allocation.round_robin(5, 3))

    def test_annealing_close_to_exhaustive(self):
        """The paper's claim: SA is near-optimal on small problems."""
        objective = make_objective(m=6, n=3, seed=13)
        initial = Allocation.round_robin(6, 3)
        optimum = exhaustive_search(objective, initial)
        from repro.core.annealing import SAConfig

        sa = optimize("annealing", objective, initial,
                      config=SAConfig(max_iterations=3000, seed=3))
        assert sa.best_value >= 0.95 * optimum.best_value
