"""Graceful-drain acceptance test against a real ``repro serve`` process.

Boots the actual CLI in a subprocess, submits work over HTTP, sends
SIGTERM mid-flight and pins the contract: the in-flight job still
completes and is collectable, new submissions are refused with 503,
and the process exits 0.
"""

import os
import signal
import socket
import subprocess
import sys
import time

import pytest

import repro
from repro.runner import RunSpec
from repro.runner.serialize import result_from_dict
from repro.service import Client, ServiceError


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_for_health(client: Client, timeout_s: float = 30.0) -> None:
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            if client.health()["state"] == "running":
                return
        except OSError:
            pass
        time.sleep(0.05)
    pytest.fail("service did not come up in time")


def test_sigterm_drains_in_flight_work_and_exits_zero(tmp_path):
    port = free_port()
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--port", str(port), "--jobs", "1"],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    try:
        client = Client(port=port)
        wait_for_health(client)

        spec = RunSpec(workload="MTMI", threads=4, balancer="vanilla",
                       n_epochs=300)
        (job,) = client.submit(spec)
        process.send_signal(signal.SIGTERM)

        # New work is refused once the drain begins (the signal is
        # handled asynchronously, so poll briefly for the transition).
        deadline = time.monotonic() + 10
        refused = False
        probe = RunSpec(workload="MTMI", threads=2, balancer="vanilla",
                        n_epochs=2, seed=99)
        while time.monotonic() < deadline and not refused:
            try:
                client.submit(probe)
                time.sleep(0.02)
            except ServiceError as exc:
                assert exc.status in (503, 429)
                refused = exc.status == 503
            except OSError:
                break  # listener already closed; drain was that fast
        # The in-flight job survives the drain and its result is
        # collectable during the post-drain linger window.
        final = client.wait(job["id"], timeout_s=120)
        assert final["status"] == "done"
        result = result_from_dict(final["result"])
        assert len(result.epochs) == 300

        assert process.wait(timeout=60) == 0
    finally:
        if process.poll() is None:
            process.kill()
            process.wait(timeout=10)
    output = process.stdout.read().decode()
    assert "Traceback" not in output
