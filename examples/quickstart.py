#!/usr/bin/env python3
"""Quickstart: SmartBalance vs the vanilla Linux balancer.

Builds the paper's quad-core heterogeneous MPSoC (Huge + Big + Medium +
Small, Table 2), runs one interactive microbenchmark configuration
under both balancers, and reports the energy-efficiency improvement —
a single data point of Fig. 4(a).

Run:  python examples/quickstart.py
"""

from repro import (
    SmartBalanceKernelAdapter,
    System,
    VanillaBalancer,
    imb_threads,
    quad_hmp,
)


def main() -> None:
    platform = quad_hmp()
    print(f"Platform: {platform.describe()}")

    # Eight medium-throughput, medium-interactivity threads (the 'MTMI'
    # configuration of the paper's IMB grid).
    workload = lambda: imb_threads("MTMI", n_threads=8)  # noqa: E731

    results = {}
    for balancer in (VanillaBalancer(), SmartBalanceKernelAdapter()):
        system = System(platform, workload(), balancer)
        result = system.run(n_epochs=40)
        results[result.balancer_name] = result
        print(
            f"{result.balancer_name:>13}: "
            f"{result.ips_per_watt:.3e} instructions/J  "
            f"({result.average_ips:.3e} IPS, {result.average_power_w:.2f} W, "
            f"{result.migrations} migrations)"
        )

    improvement = results["smartbalance"].improvement_over(results["vanilla"])
    print(f"\nSmartBalance energy-efficiency gain over vanilla: {improvement:+.1f} %")
    print("(The paper reports >50 % averaged across all benchmarks.)")


if __name__ == "__main__":
    main()
