"""Tests for table and bar-chart rendering."""

import pytest

from repro.analysis.reporting import ExperimentResult, Finding
from repro.analysis.tables import format_bar_chart, format_table


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long_header"], [["x", 1], ["yyyy", 22]])
        lines = text.splitlines()
        assert len({line.index("|") for line in lines if "|" in line}) == 1

    def test_title_rendered(self):
        text = format_table(["a"], [["x"]], title="My Table")
        assert text.startswith("My Table")
        assert "=" * len("My Table") in text

    def test_float_formatting(self):
        text = format_table(["v"], [[3.14159265]])
        assert "3.142" in text

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only one"]])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])


class TestFormatBarChart:
    def test_bars_scale_to_peak(self):
        text = format_bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_value_shown(self):
        text = format_bar_chart(["x"], [42.5], unit="%")
        assert "42.5%" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_bar_chart(["a"], [1.0, 2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_bar_chart([], [])


class TestExperimentResult:
    def make(self) -> ExperimentResult:
        return ExperimentResult(
            experiment_id="figX",
            title="Test figure",
            headers=["k", "v"],
            rows=[["a", 1.0]],
            findings=(Finding(name="gain", measured=51.0, paper=50.0, unit="%"),),
            notes="a note",
        )

    def test_render_contains_everything(self):
        text = self.make().render()
        assert "Test figure" in text
        assert "gain" in text
        assert "paper: 50" in text
        assert "a note" in text

    def test_finding_lookup(self):
        result = self.make()
        assert result.finding("gain").measured == 51.0
        with pytest.raises(KeyError):
            result.finding("missing")

    def test_finding_without_paper_value(self):
        finding = Finding(name="solo", measured=1.25)
        assert "paper" not in finding.render()
