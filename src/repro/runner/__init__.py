"""Parallel experiment runner: hashable jobs, derived seeds, caching.

The sweep engine decomposes experiments into independent
:class:`RunSpec` jobs and executes them across a ``multiprocessing``
pool (``--jobs N`` / ``REPRO_JOBS``), with results cached on disk
under ``benchmarks/out/cache/`` keyed by spec + simulator config +
package version.  See :mod:`repro.runner.engine` for the execution
model and the determinism guarantees the test suite enforces.
"""

from repro.runner.cache import ResultCache, default_cache_dir
from repro.runner.engine import (
    DEFAULT_RETRIES,
    SweepExperiment,
    execute_spec,
    retry_delays,
    run_spec,
    run_specs,
    run_sweep,
)
from repro.runner.env import (
    CACHE_DIR_ENV,
    DEFAULT_QUEUE_DEPTH,
    DEFAULT_SERVICE_PORT,
    JOBS_ENV,
    SERVICE_PORT_ENV,
    SERVICE_QUEUE_DEPTH_ENV,
    env_int,
    env_str,
    resolve_jobs,
    resolve_queue_depth,
    resolve_service_port,
)
from repro.runner.factories import (
    BALANCERS,
    PLATFORMS,
    catalogue,
    make_balancer,
    make_platform,
    make_workload,
    workload_names,
)
from repro.runner.serialize import (
    metrics_dict,
    metrics_digest,
    result_from_dict,
    result_to_dict,
)
from repro.runner.spec import CACHE_FORMAT, RunSpec, config_fingerprint, derive_seed

__all__ = [
    "RunSpec",
    "SweepExperiment",
    "ResultCache",
    "run_spec",
    "run_specs",
    "run_sweep",
    "execute_spec",
    "resolve_jobs",
    "resolve_service_port",
    "resolve_queue_depth",
    "retry_delays",
    "DEFAULT_RETRIES",
    "derive_seed",
    "config_fingerprint",
    "metrics_dict",
    "metrics_digest",
    "result_to_dict",
    "result_from_dict",
    "default_cache_dir",
    "make_platform",
    "make_workload",
    "make_balancer",
    "catalogue",
    "workload_names",
    "PLATFORMS",
    "BALANCERS",
    "JOBS_ENV",
    "CACHE_DIR_ENV",
    "SERVICE_PORT_ENV",
    "SERVICE_QUEUE_DEPTH_ENV",
    "DEFAULT_SERVICE_PORT",
    "DEFAULT_QUEUE_DEPTH",
    "env_int",
    "env_str",
    "CACHE_FORMAT",
]
