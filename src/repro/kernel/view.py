"""The kernel-side system view handed to load balancers.

This is the boundary between *ground truth* (which only the simulator
sees) and *observations* (what a real kernel could know):

* per-task hardware counters, read through the noisy sensing interface
  at the epoch boundary — the paper's per-thread sampling at context
  switches, aggregated per epoch (Section 4.1);
* per-task measured power, attributed from per-core power sensors by
  time share (Eq. 5's ``p = ε / τ``);
* per-task PELT-style utilisation (runnable-time tracking — standard
  kernel bookkeeping, also what ARM GTS consumes);
* per-core static facts a kernel knows from firmware tables: core
  type parameters, frequency, idle/sleep power.

Balancers must make decisions *only* from a :class:`SystemView`; tests
assert that no ground-truth phase objects leak through it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.counters import CounterBlock, DerivedRates
from repro.hardware.features import CoreType
from repro.hardware.platform import Platform


@dataclass(frozen=True)
class TaskView:
    """Observed state of one task over the last sensing window."""

    tid: int
    name: str
    core_id: int
    weight: float
    is_user: bool
    #: PELT-style demanded-CPU fraction estimate in [0, 1].
    utilization: float
    #: Noisy counter snapshot for the window.
    counters: CounterBlock
    #: Rates derived from the noisy counters (Section 4.1 ratios).
    rates: DerivedRates
    #: Measured average power while this task ran (W); 0 if it never ran.
    power_w: float
    #: Wall time the task actually executed during the window (s).
    busy_time_s: float
    #: cpuset affinity (core ids); None = any core.
    allowed_cores: "frozenset[int] | None" = None
    #: Scenario observable: fraction of the thread's total barrier work
    #: completed, for progress-equalising placement.  ``None`` for
    #: every thread outside a barrier scenario.
    progress_frac: "float | None" = None
    #: Scenario observable: remaining fraction of a request's latency
    #: budget (1 at arrival, 0 at the deadline, clamped at -1 when
    #: overdue).  ``None`` for every thread outside an open-loop
    #: scenario.
    slo_slack_frac: "float | None" = None

    @property
    def has_measurement(self) -> bool:
        """True when the task ran long enough to be characterised."""
        return self.busy_time_s > 0 and self.counters.instructions > 0


@dataclass(frozen=True)
class CoreView:
    """Observed state of one core over the last sensing window."""

    core_id: int
    core_type: CoreType
    cluster: str
    #: Measured average power over the window (W), from the sensor.
    power_w: float
    #: Idle and sleep power from firmware tables (W).
    idle_power_w: float
    sleep_power_w: float
    #: Noisy per-core counter snapshot.
    counters: CounterBlock
    #: Run-queue statistics (exact — kernel bookkeeping).
    nr_running: int
    load: float
    #: Core temperature (deg C) from the thermal sensor; ambient when
    #: the thermal model is disabled.
    temperature_c: float = 45.0
    #: False while the core is hot-unplugged; an offline core schedules
    #: nothing and must be masked out of placement searches.
    online: bool = True


@dataclass(frozen=True)
class SystemView:
    """Everything a balancer may observe at a rebalancing point."""

    epoch_index: int
    time_s: float
    window_s: float
    platform: Platform
    tasks: tuple[TaskView, ...]
    cores: tuple[CoreView, ...]

    @property
    def placement(self) -> dict[int, int]:
        """Current ``tid -> core_id`` mapping."""
        return {t.tid: t.core_id for t in self.tasks}

    @property
    def user_tasks(self) -> tuple[TaskView, ...]:
        return tuple(t for t in self.tasks if t.is_user)

    @property
    def online_core_ids(self) -> frozenset[int]:
        return frozenset(c.core_id for c in self.cores if c.online)

    def tasks_on_core(self, core_id: int) -> tuple[TaskView, ...]:
        return tuple(t for t in self.tasks if t.core_id == core_id)

    def core(self, core_id: int) -> CoreView:
        for core in self.cores:
            if core.core_id == core_id:
                return core
        raise KeyError(f"no core with id {core_id}")
