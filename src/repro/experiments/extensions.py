"""Extension experiments (beyond the paper's figures).

* ``run_virtual_sensing`` — predictor accuracy vs physical counter
  count (the Section 6.4 sparse-sensing trade-off, quantified);
* ``run_optimizer_comparison`` — Algorithm 1 vs greedy / random /
  exhaustive on known-optimal problems (the quality argument behind
  choosing SA, as an artifact rather than an assertion);
* ``run_replicated_headline`` — the Fig. 4 headline improvements with
  multi-seed confidence intervals (the paper reports single runs).
"""

from __future__ import annotations

import random

import numpy as np

from repro.analysis.reporting import ExperimentResult, Finding
from repro.analysis.stats import mean
from repro.core.allocation import Allocation
from repro.core.annealing import SAConfig
from repro.core.optimizers import optimize
from repro.core.training import default_predictor, profile_phase
from repro.core.virtual_sensing import (
    MINIMAL_OBSERVED,
    sparsify,
    train_virtual_sensors,
)
from repro.experiments.fig8 import brute_force_optimum, synthetic_problem
from repro.hardware import microarch
from repro.hardware.features import TABLE2_TYPES
from repro.obs import user_output
from repro.workload.parsec import BENCHMARKS

#: Physical counter subsets swept, minimal -> full.
COUNTER_SWEEP: dict[str, tuple[str, ...] | None] = {
    "4 (cycle/instr only)": MINIMAL_OBSERVED,
    "6 (+L1D, branch)": MINIMAL_OBSERVED + ("mr_l1d", "mr_b"),
    "8 (+L1I, dTLB)": MINIMAL_OBSERVED + ("mr_l1d", "mr_b", "mr_l1i", "mr_dtlb"),
    "10 (all, no reconstruction)": None,
}


def _prediction_error(observed: tuple[str, ...] | None, eval_seed: int = 77) -> float:
    """Mean cross-type IPC error with a given physical counter set."""
    model = default_predictor()
    sensors = None
    if observed is not None:
        sensors = train_virtual_sensors(
            TABLE2_TYPES, observed=observed, n_synthetic=150
        )
    errors = []
    for bench in BENCHMARKS.values():
        for thread in bench.threads(1, eval_seed):
            for segment in thread.schedule.segments:
                phase = segment.phase
                for src in TABLE2_TYPES:
                    features = profile_phase(phase, src)
                    if sensors is not None:
                        features = sensors.reconstruct(
                            src, sparsify(features, observed)
                        )
                    for dst in TABLE2_TYPES:
                        if dst.name == src.name:
                            continue
                        truth = microarch.estimate(phase, dst).ipc
                        pred = model.predict_ipc(src.name, dst.name, features)
                        errors.append(abs(pred - truth) / truth)
    return float(np.mean(errors))


def run_virtual_sensing() -> ExperimentResult:
    """Predictor IPC error vs number of physical counters."""
    rows = []
    minimal_error = full_error = None
    for label, observed in COUNTER_SWEEP.items():
        error = _prediction_error(observed)
        if observed is MINIMAL_OBSERVED:
            minimal_error = error
        if observed is None:
            full_error = error
        rows.append([label, round(100 * error, 2)])
    findings = [
        Finding(
            name="IPC error with minimal counters",
            measured=100 * (minimal_error or 0.0),
            unit="%",
        ),
        Finding(
            name="IPC error with full counters",
            measured=100 * (full_error or 0.0),
            unit="%",
        ),
    ]
    return ExperimentResult(
        experiment_id="ext_virtual_sensing",
        title="Extension: sparse virtual sensing — predictor error vs "
        "physical counter count (paper Section 6.4)",
        headers=["physical counters", "IPC prediction error %"],
        rows=rows,
        findings=tuple(findings),
        notes=(
            "Hidden rates are reconstructed per core type by linear "
            "regression on the observed subset "
            "(repro.core.virtual_sensing)."
        ),
    )


def run_optimizer_comparison(
    n_threads: int = 6,
    n_cores: int = 4,
    n_problems: int = 5,
    budget: int = 1000,
) -> ExperimentResult:
    """Algorithm 1 vs alternatives on known-optimal problems."""
    methods = ("annealing", "greedy", "random")
    gaps: dict[str, list[float]] = {m: [] for m in methods}
    evaluations: dict[str, list[int]] = {m: [] for m in methods}
    for seed in range(n_problems):
        objective = synthetic_problem(n_threads, n_cores, seed)
        optimum = brute_force_optimum(objective)
        initial = Allocation.round_robin(n_threads, n_cores)
        for method in methods:
            kwargs = {}
            if method == "annealing":
                kwargs["config"] = SAConfig(max_iterations=budget, seed=seed + 1)
            elif method == "random":
                kwargs["iterations"] = budget
            result = optimize(method, objective, initial, **kwargs)
            fresh = objective.evaluate(result.best_allocation)
            gaps[method].append(max(0.0, (optimum - fresh) / optimum))
            evaluations[method].append(result.evaluations)
    rows = [
        [
            method,
            round(100 * mean(gaps[method]), 2),
            round(mean([float(e) for e in evaluations[method]])),
        ]
        for method in methods
    ]
    rows.append(["exhaustive", 0.0, n_cores ** n_threads])
    return ExperimentResult(
        experiment_id="ext_optimizers",
        title="Extension: optimizer comparison at matched budgets "
        f"({n_threads} threads, {n_cores} cores, {n_problems} problems)",
        headers=["optimizer", "distance to optimal %", "evaluations"],
        rows=rows,
        findings=(
            Finding(
                name="annealing distance to optimal",
                measured=100 * mean(gaps["annealing"]),
                unit="%",
            ),
        ),
    )


def run_replicated_headline(
    n_seeds: int = 5, n_epochs: int = 20
) -> ExperimentResult:
    """Headline smart-vs-vanilla improvements with bootstrap CIs."""
    from repro.analysis.replication import compare_with_replication
    from repro.hardware.platform import quad_hmp
    from repro.kernel.balancers.smart import SmartBalanceKernelAdapter
    from repro.kernel.balancers.vanilla import VanillaBalancer
    from repro.workload.parsec import benchmark
    from repro.workload.synthetic import imb_threads

    cases = {
        "MTMI x 8 (IMB)": lambda seed: imb_threads("MTMI", 8, seed=seed),
        "HTHI x 4 (IMB)": lambda seed: imb_threads("HTHI", 4, seed=seed),
        "x264_L_bow x 8": lambda seed: benchmark("x264_L_bow").threads(8, seed),
        "bodytrack x 4": lambda seed: benchmark("bodytrack").threads(4, seed),
    }
    rows = []
    ci_lows = []
    for label, workload_factory in cases.items():
        replication = compare_with_replication(
            platform_factory=quad_hmp,
            workload_factory=workload_factory,
            baseline_factory=VanillaBalancer,
            candidate_factory=SmartBalanceKernelAdapter,
            n_epochs=n_epochs,
            n_seeds=n_seeds,
        )
        ci_lows.append(replication.ci_low)
        rows.append(
            [
                label,
                round(replication.mean, 1),
                round(replication.stdev, 1),
                f"[{replication.ci_low:.1f}, {replication.ci_high:.1f}]",
            ]
        )
    return ExperimentResult(
        experiment_id="ext_replicated",
        title=f"Extension: replicated headline improvements over vanilla "
        f"({n_seeds} seeds, 95 % bootstrap CI)",
        headers=["case", "gain % (mean)", "stdev", "95% CI"],
        rows=rows,
        findings=(
            Finding(
                name="worst-case CI lower bound",
                measured=min(ci_lows),
                unit="%",
            ),
        ),
        notes=(
            "Each seed redraws both the workload jitter and the sensing "
            "noise; the paper reports single runs."
        ),
    )


def main() -> None:
    user_output(run_virtual_sensing().render())
    user_output()
    user_output(run_optimizer_comparison().render())
    user_output()
    user_output(run_replicated_headline().render())


if __name__ == "__main__":
    main()
