"""Thread-to-core allocation representation.

Algorithm 1 manipulates the allocation Ψ "implemented as a
uni-dimensional array": a flat array of *slots*, ``slots_per_core``
consecutive slots per core, each slot holding a thread index or
``EMPTY``.  Swapping two slot positions either exchanges two threads
between cores, moves a thread to another core (swap with an empty
slot), or is a no-op within one core — exactly the move set the
paper's annealer perturbs.

:class:`Allocation` maintains the slot array together with the inverse
``thread -> core`` map and per-core occupancy, so the objective's
incremental evaluator can find affected cores in O(1).
"""

from __future__ import annotations

from typing import Sequence

#: Slot marker for "no thread".
EMPTY = -1


class Allocation:
    """A slot-array allocation of ``n_threads`` onto ``n_cores``."""

    def __init__(self, n_threads: int, n_cores: int, slots_per_core: int | None = None) -> None:
        if n_threads < 0:
            raise ValueError(f"n_threads must be >= 0, got {n_threads}")
        if n_cores < 1:
            raise ValueError(f"n_cores must be >= 1, got {n_cores}")
        if slots_per_core is None:
            # Enough headroom that any core can hold every thread —
            # the annealer must be able to reach all allocations.
            slots_per_core = max(n_threads, 1)
        if slots_per_core < 1:
            raise ValueError(f"slots_per_core must be >= 1, got {slots_per_core}")
        if slots_per_core * n_cores < n_threads:
            raise ValueError(
                f"{n_cores} cores x {slots_per_core} slots cannot hold "
                f"{n_threads} threads"
            )
        self.n_threads = n_threads
        self.n_cores = n_cores
        self.slots_per_core = slots_per_core
        self.slots: list[int] = [EMPTY] * (n_cores * slots_per_core)
        self._thread_slot: list[int] = [EMPTY] * n_threads

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_mapping(
        cls,
        thread_cores: Sequence[int],
        n_cores: int,
        slots_per_core: int | None = None,
    ) -> "Allocation":
        """Build from a ``thread index -> core id`` sequence."""
        alloc = cls(len(thread_cores), n_cores, slots_per_core)
        for thread, core in enumerate(thread_cores):
            alloc.place(thread, core)
        return alloc

    @classmethod
    def round_robin(cls, n_threads: int, n_cores: int) -> "Allocation":
        """The simulator's initial placement: thread i on core i mod n."""
        return cls.from_mapping([i % n_cores for i in range(n_threads)], n_cores)

    def copy(self) -> "Allocation":
        clone = Allocation.__new__(Allocation)
        clone.n_threads = self.n_threads
        clone.n_cores = self.n_cores
        clone.slots_per_core = self.slots_per_core
        clone.slots = list(self.slots)
        clone._thread_slot = list(self._thread_slot)
        return clone

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.slots)

    def slot_core(self, slot: int) -> int:
        """Core id owning a slot position."""
        if not 0 <= slot < len(self.slots):
            raise IndexError(f"slot {slot} out of range")
        return slot // self.slots_per_core

    def core_of(self, thread: int) -> int:
        """Core currently holding ``thread``."""
        slot = self._thread_slot[thread]
        if slot == EMPTY:
            raise ValueError(f"thread {thread} is not placed")
        return self.slot_core(slot)

    def threads_on(self, core: int) -> list[int]:
        """Threads currently on ``core`` (slot order)."""
        start = core * self.slots_per_core
        return [
            t for t in self.slots[start : start + self.slots_per_core] if t != EMPTY
        ]

    def mapping(self) -> list[int]:
        """The ``thread -> core`` list."""
        return [self.core_of(t) for t in range(self.n_threads)]

    def is_complete(self) -> bool:
        """True when every thread is placed exactly once."""
        return all(slot != EMPTY for slot in self._thread_slot)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def place(self, thread: int, core: int) -> None:
        """Place an unplaced thread into a free slot on ``core``."""
        if not 0 <= thread < self.n_threads:
            raise IndexError(f"thread {thread} out of range")
        if not 0 <= core < self.n_cores:
            raise IndexError(f"core {core} out of range")
        if self._thread_slot[thread] != EMPTY:
            raise ValueError(f"thread {thread} already placed")
        start = core * self.slots_per_core
        for slot in range(start, start + self.slots_per_core):
            if self.slots[slot] == EMPTY:
                self.slots[slot] = thread
                self._thread_slot[thread] = slot
                return
        raise ValueError(f"core {core} has no free slot")

    def swap(self, pos_a: int, pos_b: int) -> tuple[int, int]:
        """Swap two slot positions (Algorithm 1's ``swap(Ψ, pos, pos_new)``).

        Returns the two affected core ids (equal for an intra-core
        swap).  Swapping two empty slots is a valid no-op.
        """
        core_a = self.slot_core(pos_a)
        core_b = self.slot_core(pos_b)
        ta, tb = self.slots[pos_a], self.slots[pos_b]
        self.slots[pos_a], self.slots[pos_b] = tb, ta
        if ta != EMPTY:
            self._thread_slot[ta] = pos_b
        if tb != EMPTY:
            self._thread_slot[tb] = pos_a
        return core_a, core_b

    def diff(self, other: "Allocation") -> dict[int, int]:
        """Threads whose core differs in ``other``: ``thread -> new core``.

        This is the migration set the kernel applies when the annealer
        returns an improved allocation.
        """
        if other.n_threads != self.n_threads:
            raise ValueError("allocations describe different thread sets")
        changes: dict[int, int] = {}
        for thread in range(self.n_threads):
            before = self.core_of(thread)
            after = other.core_of(thread)
            if before != after:
                changes[thread] = after
        return changes
