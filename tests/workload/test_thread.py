"""Tests for thread behaviours and demand semantics."""

import pytest

from repro.hardware import microarch
from repro.hardware.features import HUGE, MEDIUM, SMALL
from repro.workload.characteristics import COMPUTE_PHASE, MEMORY_PHASE, WorkloadPhase
from repro.workload.demand import (
    CPU_BOUND_DUTY,
    REFERENCE_CORE,
    demanded_fraction_on,
    reference_ips,
    with_duty,
)
from repro.workload.thread import ThreadBehavior, phased_thread, steady_thread


class TestThreadBehavior:
    def test_steady_thread(self):
        thread = steady_thread("t", COMPUTE_PHASE)
        assert thread.phase_at(0.0) is COMPUTE_PHASE
        assert thread.phase_at(1e15) is COMPUTE_PHASE
        assert thread.total_instructions is None

    def test_phased_thread_cycles(self):
        thread = phased_thread(
            "t", [(COMPUTE_PHASE, 100.0), (MEMORY_PHASE, 100.0)]
        )
        assert thread.phase_at(50.0) is COMPUTE_PHASE
        assert thread.phase_at(150.0) is MEMORY_PHASE
        assert thread.phase_at(250.0) is COMPUTE_PHASE

    def test_invalid_total_instructions(self):
        with pytest.raises(ValueError):
            steady_thread("t", COMPUTE_PHASE, total_instructions=0.0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            steady_thread("t", COMPUTE_PHASE, arrival_s=-1.0)

    def test_zero_weight_rejected(self):
        with pytest.raises(ValueError):
            ThreadBehavior(
                name="t",
                schedule=steady_thread("x", COMPUTE_PHASE).schedule,
                nice_weight=0.0,
            )


class TestWithDuty:
    def test_cpu_bound_duty_stays_unlimited(self):
        phase = with_duty(COMPUTE_PHASE, duty=1.0)
        assert phase.work_rate_ips is None
        assert phase.active_fraction == 1.0

    def test_rate_limited_duty_sets_work_rate(self):
        phase = with_duty(COMPUTE_PHASE, duty=0.5)
        assert phase.work_rate_ips == pytest.approx(
            0.5 * reference_ips(COMPUTE_PHASE)
        )

    def test_duty_threshold(self):
        below = with_duty(COMPUTE_PHASE, duty=CPU_BOUND_DUTY - 0.01)
        at = with_duty(COMPUTE_PHASE, duty=CPU_BOUND_DUTY)
        assert below.work_rate_ips is not None
        assert at.work_rate_ips is None

    def test_invalid_duty_rejected(self):
        with pytest.raises(ValueError):
            with_duty(COMPUTE_PHASE, duty=0.0)
        with pytest.raises(ValueError):
            with_duty(COMPUTE_PHASE, duty=1.5)

    def test_uses_phase_active_fraction_by_default(self):
        phase = COMPUTE_PHASE.scaled(active_fraction=0.4)
        anchored = with_duty(phase)
        assert anchored.work_rate_ips == pytest.approx(
            0.4 * reference_ips(phase)
        )


class TestDemandedFraction:
    def test_reference_core_demand_equals_duty(self):
        phase = with_duty(COMPUTE_PHASE, duty=0.5)
        assert demanded_fraction_on(phase, REFERENCE_CORE) == pytest.approx(0.5)

    def test_faster_core_demands_less(self):
        phase = with_duty(COMPUTE_PHASE, duty=0.5)
        assert demanded_fraction_on(phase, HUGE) < 0.5

    def test_slower_core_demands_more(self):
        phase = with_duty(COMPUTE_PHASE, duty=0.5)
        assert demanded_fraction_on(phase, SMALL) > 0.5

    def test_saturates_at_one(self):
        phase = with_duty(COMPUTE_PHASE, duty=0.9)
        assert demanded_fraction_on(phase, SMALL) == 1.0

    def test_cpu_bound_demands_everything_everywhere(self):
        phase = with_duty(COMPUTE_PHASE, duty=1.0)
        for core in (HUGE, MEDIUM, SMALL):
            assert demanded_fraction_on(phase, core) == 1.0

    def test_work_conserved_across_cores(self):
        """A rate-limited thread delivers the same instruction rate on
        any core fast enough to serve it."""
        phase = with_duty(COMPUTE_PHASE, duty=0.3)
        for core in (HUGE, MEDIUM):
            demand = demanded_fraction_on(phase, core)
            delivered = demand * microarch.estimate(phase, core).ips(core)
            assert delivered == pytest.approx(phase.work_rate_ips, rel=1e-9)

    def test_legacy_phase_uses_active_fraction(self):
        phase = WorkloadPhase(ilp=2.0, mem_share=0.3, branch_share=0.1,
                              working_set_kb=64.0, active_fraction=0.6)
        assert demanded_fraction_on(phase, HUGE) == 0.6
