"""Tests for the full-system simulator."""

import pytest

from repro.hardware.platform import quad_hmp
from repro.hardware.sensors import NoiseModel
from repro.kernel.balancers.base import NullBalancer
from repro.kernel.balancers.vanilla import VanillaBalancer
from repro.kernel.simulator import SimulationConfig, System
from repro.kernel.task import TaskState
from repro.workload.characteristics import COMPUTE_PHASE
from repro.workload.demand import with_duty
from repro.workload.synthetic import imb_threads
from repro.workload.thread import steady_thread

IDEAL = SimulationConfig(
    counter_noise=NoiseModel(sigma=0.0), power_noise=NoiseModel(sigma=0.0)
)


def make_system(n_threads=4, balancer=None, config=None) -> System:
    return System(
        quad_hmp(),
        imb_threads("MTMI", n_threads),
        balancer or NullBalancer(),
        config,
    )


class TestConstruction:
    def test_round_robin_initial_placement(self):
        system = make_system(6)
        assert [t.core_id for t in system.tasks] == [0, 1, 2, 3, 0, 1]

    def test_tasks_active_at_start(self):
        system = make_system()
        assert all(t.state is TaskState.ACTIVE for t in system.tasks)

    def test_late_arrival_pending(self):
        behaviors = [
            steady_thread("now", COMPUTE_PHASE),
            steady_thread("later", COMPUTE_PHASE, arrival_s=0.1),
        ]
        system = System(quad_hmp(), behaviors, NullBalancer())
        assert system.tasks[1].state is TaskState.PENDING

    def test_os_noise_tasks_marked_kernel(self):
        config = SimulationConfig(os_noise_tasks=2)
        system = System(
            quad_hmp(), imb_threads("MTMI", 2), NullBalancer(), config
        )
        assert len(system.tasks) == 4
        assert [t.is_user for t in system.tasks] == [True, True, False, False]

    def test_empty_behaviors_rejected(self):
        with pytest.raises(ValueError):
            System(quad_hmp(), [], NullBalancer())

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            SimulationConfig(period_s=0.0)
        with pytest.raises(ValueError):
            SimulationConfig(periods_per_epoch=0)


class TestRun:
    def test_duration_vs_epochs_exclusive(self):
        system = make_system()
        with pytest.raises(ValueError):
            system.run()
        with pytest.raises(ValueError):
            system.run(duration_s=1.0, n_epochs=2)

    def test_simulated_time_advances(self):
        system = make_system()
        result = system.run(n_epochs=5)
        assert result.duration_s == pytest.approx(5 * system.config.epoch_s)
        assert len(result.epochs) == 5

    def test_instructions_and_energy_positive(self):
        result = make_system().run(n_epochs=3)
        assert result.instructions > 0.0
        assert result.energy_j > 0.0
        assert result.ips_per_watt > 0.0

    def test_energy_conservation_across_cores(self):
        result = make_system().run(n_epochs=3)
        assert result.energy_j == pytest.approx(
            sum(c.energy_j for c in result.core_stats)
        )

    def test_epoch_totals_match_run_totals(self):
        result = make_system().run(n_epochs=4)
        assert sum(e.instructions for e in result.epochs) == pytest.approx(
            result.instructions
        )
        assert sum(e.energy_j for e in result.epochs) == pytest.approx(
            result.energy_j
        )

    def test_deterministic_for_seed(self):
        a = make_system(config=SimulationConfig(seed=5)).run(n_epochs=3)
        b = make_system(config=SimulationConfig(seed=5)).run(n_epochs=3)
        assert a.instructions == b.instructions
        assert a.energy_j == b.energy_j

    def test_task_exits_when_work_done(self):
        phase = with_duty(COMPUTE_PHASE, duty=1.0)
        behaviors = [steady_thread("short", phase, total_instructions=1e6)]
        system = System(quad_hmp(), behaviors, NullBalancer())
        system.run(n_epochs=2)
        assert system.tasks[0].state is TaskState.EXITED
        assert system.tasks[0].total_instructions == pytest.approx(1e6, rel=1e-6)

    def test_pending_task_arrives_mid_run(self):
        behaviors = [
            steady_thread("now", COMPUTE_PHASE),
            steady_thread("later", COMPUTE_PHASE, arrival_s=0.05),
        ]
        system = System(quad_hmp(), behaviors, NullBalancer())
        system.run(n_epochs=3)
        assert system.tasks[1].state is TaskState.ACTIVE
        assert system.tasks[1].total_instructions > 0.0

    def test_kernel_threads_excluded_from_user_instructions(self):
        config = SimulationConfig(os_noise_tasks=2)
        system = System(quad_hmp(), imb_threads("MTMI", 2), NullBalancer(), config)
        result = system.run(n_epochs=3)
        user = sum(
            t.instructions for t in result.task_stats if system.tasks[t.tid].is_user
        )
        assert result.instructions == pytest.approx(user)


class TestMigration:
    def test_migrate_moves_and_charges_warmup(self):
        system = make_system()
        task = system.tasks[0]
        system.migrate(task, 3)
        assert task.core_id == 3
        assert task.warmup_remaining_s > 0.0
        assert task.migrations == 1
        assert system.total_migrations == 1

    def test_self_migration_is_noop(self):
        system = make_system()
        system.migrate(system.tasks[0], 0)
        assert system.total_migrations == 0

    def test_invalid_destination_rejected(self):
        system = make_system()
        with pytest.raises(ValueError):
            system.migrate(system.tasks[0], 9)

    def test_apply_placement_skips_exited(self):
        system = make_system()
        system.tasks[0].state = TaskState.EXITED
        moved = system.apply_placement({0: 2})
        assert moved == 0

    def test_vanilla_run_migrates(self):
        system = make_system(5, balancer=VanillaBalancer())
        result = system.run(n_epochs=3)
        # 5 tasks round-robin onto 4 cores is imbalanced: (2,1,1,1) is
        # already the best possible count split, so no migration needed;
        # with 6+ on 4 the counts (2,2,1,1) are stable too.  Force an
        # imbalance instead:
        assert result.migrations == system.total_migrations


class TestView:
    def test_view_covers_active_tasks_only(self):
        behaviors = [
            steady_thread("now", COMPUTE_PHASE),
            steady_thread("later", COMPUTE_PHASE, arrival_s=10.0),
        ]
        system = System(quad_hmp(), behaviors, NullBalancer())
        system.run(n_epochs=1)
        view = system.build_view(window_s=0.06)
        assert [t.tid for t in view.tasks] == [0]

    def test_view_counters_noisy_but_close(self):
        system = make_system(config=SimulationConfig(seed=3))
        system.run(n_epochs=2)
        view = system.build_view(window_s=0.06)
        for task_view in view.tasks:
            truth = system.tasks[task_view.tid].counters.instructions
            if truth > 0:
                assert task_view.counters.instructions == pytest.approx(
                    truth, rel=0.3
                )

    def test_ideal_sensors_reproduce_truth(self):
        system = make_system(config=IDEAL)
        system.run(n_epochs=2)
        view = system.build_view(window_s=0.06)
        for task_view in view.tasks:
            truth = system.tasks[task_view.tid].counters.instructions
            assert task_view.counters.instructions == truth

    def test_view_power_attribution(self):
        system = make_system(config=IDEAL)
        system.run(n_epochs=2)
        view = system.build_view(window_s=0.06)
        for task_view in view.tasks:
            task = system.tasks[task_view.tid]
            if task.counters.busy_time_s > 0:
                expected = task.epoch_energy_j / task.counters.busy_time_s
                assert task_view.power_w == pytest.approx(expected)

    def test_placement_map(self):
        system = make_system()
        system.run(n_epochs=1)
        view = system.build_view(window_s=0.06)
        assert view.placement == {t.tid: t.core_id for t in view.tasks}

    def test_core_lookup(self):
        system = make_system()
        view = system.build_view(window_s=0.0)
        assert view.core(2).core_id == 2
        with pytest.raises(KeyError):
            view.core(9)
